package experiments

import (
	"fmt"

	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/parallel"
	"edgeis/internal/pipeline"
	"edgeis/internal/roisel"
	"edgeis/internal/segmodel"
	"edgeis/internal/transfer"
)

// AblationContourK sweeps the contour-depth neighbourhood size k of the
// mask transfer (the paper fixes k = 5 from their observation about local
// depth smoothness). Too small is noisy; too large flattens depth
// discontinuities at object borders.
func AblationContourK(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblK", Title: "Contour depth neighbourhood k (paper: k=5)"}
	clips := dataset.KITTI(seed, frames)
	cam := EvalCamera()

	r.Addf("%-6s %9s %12s", "k", "IoU", "false@0.75")
	lines := parallel.Map([]int{1, 3, 5, 9, 15}, func(_ int, k int) string {
		out := RunCustomClips("k", clips, netsim.WiFi5, seed, func(cfgSeed int64) pipeline.Strategy {
			return core.NewSystem(core.Config{
				Camera: cam, Device: device.IPhone11, Seed: cfgSeed,
				Transfer: transfer.Config{K: k},
			})
		})
		return fmt.Sprintf("%-6d %9.3f %12s", k, out.Acc.MeanIoU(),
			pct(out.Acc.FalseRate(metrics.StrictThreshold)))
	})
	r.Lines = append(r.Lines, lines...)
	return r
}

// AblationOffloadThreshold sweeps the new-content trigger threshold t
// (the paper sets t = 0.25). Lower thresholds offload more (bandwidth and
// edge load) for diminishing accuracy gains.
func AblationOffloadThreshold(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblT", Title: "CFRS offload threshold t (paper: t=0.25)"}
	clips := dataset.KITTI(seed, frames)
	cam := EvalCamera()

	r.Addf("%-6s %9s %12s %10s %12s", "t", "IoU", "false@0.75", "offloads", "uplink KB")
	lines := parallel.Map([]float64{0.1, 0.25, 0.5, 0.9}, func(_ int, t float64) string {
		out := RunCustomClips("t", clips, netsim.WiFi5, seed, func(cfgSeed int64) pipeline.Strategy {
			return core.NewSystem(core.Config{
				Camera: cam, Device: device.IPhone11, Seed: cfgSeed,
				// The localized cluster trigger is disabled so the sweep
				// isolates the paper's global threshold t.
				Selector: roisel.Config{NewContentThreshold: t, DisableClusterTrigger: true},
			})
		})
		return fmt.Sprintf("%-6.2f %9.3f %12s %10d %12d", t, out.Acc.MeanIoU(),
			pct(out.Acc.FalseRate(metrics.StrictThreshold)),
			out.Stats.Offloads, out.Stats.UplinkBytes/1024)
	})
	r.Lines = append(r.Lines, lines...)
	return r
}

// AblationCompressionBudget sweeps what the CFRS tile partition saves on
// the uplink against a uniform-high-quality policy, isolating the bandwidth
// claim of Section V.
func AblationCompressionBudget(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblBW", Title: "CFRS uplink bytes vs uniform encoding"}
	clips := dataset.KITTI(seed, frames)
	arms := parallel.Map([]SystemKind{SysEdgeISNoCFRS, SysEdgeIS}, func(_ int, kind SystemKind) RunOutcome {
		return RunClips(kind, clips, netsim.WiFi5, device.IPhone11, seed)
	})
	full, cfrs := arms[0], arms[1]
	r.Addf("uniform-high keyframes: %6d KB over %d offloads",
		full.Stats.UplinkBytes/1024, full.Stats.Offloads)
	r.Addf("CFRS tile encoding:     %6d KB over %d offloads",
		cfrs.Stats.UplinkBytes/1024, cfrs.Stats.Offloads)
	if full.Stats.Offloads > 0 && cfrs.Stats.Offloads > 0 {
		perFull := float64(full.Stats.UplinkBytes) / float64(full.Stats.Offloads)
		perCFRS := float64(cfrs.Stats.UplinkBytes) / float64(cfrs.Stats.Offloads)
		r.Addf("per-offload reduction: %s", pct(metrics.Reduction(perFull, perCFRS)))
	}
	r.Addf("accuracy: uniform %.3f vs CFRS %.3f IoU", full.Acc.MeanIoU(), cfrs.Acc.MeanIoU())
	return r
}

// AblationKeyframeInterval sweeps the edge's temporal-redundancy keyframe
// interval (YolactEdge-style skip-compute): a full backbone pass every N
// frames, warped cached features in between. It reports the accuracy floor
// against the per-frame edge inference cost the cache buys back. Interval 1
// is the all-keyframe baseline (policy disabled — byte-identical to the
// historical engine). Not part of All(): the committed EXPERIMENTS.md report
// is golden-pinned and this arm is recorded separately (edgeis-bench ablkf).
func AblationKeyframeInterval(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblKF", Title: "Edge skip-compute keyframe interval (feature cache)"}
	clips := dataset.KITTI(seed, frames)
	cam := EvalCamera()

	r.Addf("%-9s %9s %14s %14s", "interval", "IoU", "edge ms/frame", "edge infer ms")
	lines := parallel.Map([]int{1, 2, 4, 8}, func(_ int, n int) string {
		out := RunCustomClipsEngine("kf", clips, netsim.WiFi5, seed,
			func(cfg *pipeline.Config) {
				cfg.EdgeKeyframe = segmodel.KeyframePolicy{Interval: n}
			},
			func(cfgSeed int64) pipeline.Strategy {
				return core.NewSystem(core.Config{Camera: cam, Device: device.IPhone11, Seed: cfgSeed})
			})
		perFrame := 0.0
		if out.Stats.EdgeResultCount > 0 {
			perFrame = out.Stats.EdgeInferMsSum / float64(out.Stats.EdgeResultCount)
		}
		return fmt.Sprintf("%-9d %9.3f %14.1f %14.0f", n, out.Acc.MeanIoU(),
			perFrame, out.Stats.EdgeInferMsSum)
	})
	r.Lines = append(r.Lines, lines...)
	return r
}

// All runs every experiment, in paper order. The figures themselves fan out
// across the worker pool on top of their internal arm/clip parallelism;
// the returned slice is always in paper order regardless of completion
// order. frames trims the per-clip length of every figure (0 = each
// figure's default), including the long-run resource and fleet studies.
func All(seed int64, frames int) []*Result {
	figs := []func() *Result{
		func() *Result { return Fig2b(seed) },
		func() *Result { return Fig9(seed, frames) },
		func() *Result { return Fig10(seed, frames) },
		func() *Result { return Fig11(seed, frames) },
		func() *Result { return Fig12(seed, frames) },
		func() *Result { return Fig13(seed, frames) },
		func() *Result { return Fig14(seed) },
		func() *Result { return Fig15(seed, scaleFrames(frames, 1800)) },
		func() *Result { return Fig16(seed, frames) },
		func() *Result { return Fig17(seed, scaleFrames(frames, 420)) },
		func() *Result { return PowerStudy(seed, scaleFrames(frames, 600)) },
		func() *Result { return AblationContourK(seed, frames) },
		func() *Result { return AblationOffloadThreshold(seed, frames) },
		func() *Result { return AblationCompressionBudget(seed, frames) },
	}
	return parallel.Map(figs, func(_ int, fig func() *Result) *Result { return fig() })
}

// scaleFrames trims a figure's fixed run length proportionally when the
// caller shortens the standard clip length, keeping the long-run figures'
// relative weight. frames = 0 keeps every figure's own default.
func scaleFrames(frames, def int) int {
	if frames == 0 {
		return 0
	}
	scaled := frames * def / DefaultClipFrames
	if scaled < frames {
		scaled = frames
	}
	return scaled
}
