package experiments

import (
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/roisel"
	"edgeis/internal/transfer"
)

// AblationContourK sweeps the contour-depth neighbourhood size k of the
// mask transfer (the paper fixes k = 5 from their observation about local
// depth smoothness). Too small is noisy; too large flattens depth
// discontinuities at object borders.
func AblationContourK(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblK", Title: "Contour depth neighbourhood k (paper: k=5)"}
	clips := dataset.KITTI(seed, frames)
	cam := EvalCamera()

	r.Addf("%-6s %9s %12s", "k", "IoU", "false@0.75")
	for _, k := range []int{1, 3, 5, 9, 15} {
		acc := metrics.NewAccumulator("k")
		for i, clip := range clips {
			sys := core.NewSystem(core.Config{
				Camera: cam, Device: device.IPhone11, Seed: seed + int64(i)*101,
				Transfer: transfer.Config{K: k},
			})
			engine := pipeline.NewEngine(pipeline.Config{
				World: clip.World, Camera: cam, Trajectory: clip.Traj,
				Frames: clip.Frames, CameraSpeed: clip.CameraSpeed,
				Medium: netsim.WiFi5, Seed: seed + int64(i)*101,
			}, sys)
			evals, _ := engine.Run()
			acc.Merge(pipeline.EvaluateFrom("k", evals, WarmupFrames))
		}
		r.Addf("%-6d %9.3f %12s", k, acc.MeanIoU(),
			pct(acc.FalseRate(metrics.StrictThreshold)))
	}
	return r
}

// AblationOffloadThreshold sweeps the new-content trigger threshold t
// (the paper sets t = 0.25). Lower thresholds offload more (bandwidth and
// edge load) for diminishing accuracy gains.
func AblationOffloadThreshold(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblT", Title: "CFRS offload threshold t (paper: t=0.25)"}
	clips := dataset.KITTI(seed, frames)
	cam := EvalCamera()

	r.Addf("%-6s %9s %12s %10s %12s", "t", "IoU", "false@0.75", "offloads", "uplink KB")
	for _, t := range []float64{0.1, 0.25, 0.5, 0.9} {
		acc := metrics.NewAccumulator("t")
		offloads := 0
		uplink := 0
		for i, clip := range clips {
			sys := core.NewSystem(core.Config{
				Camera: cam, Device: device.IPhone11, Seed: seed + int64(i)*101,
				// The localized cluster trigger is disabled so the sweep
				// isolates the paper's global threshold t.
				Selector: roisel.Config{NewContentThreshold: t, DisableClusterTrigger: true},
			})
			engine := pipeline.NewEngine(pipeline.Config{
				World: clip.World, Camera: cam, Trajectory: clip.Traj,
				Frames: clip.Frames, CameraSpeed: clip.CameraSpeed,
				Medium: netsim.WiFi5, Seed: seed + int64(i)*101,
			}, sys)
			evals, stats := engine.Run()
			acc.Merge(pipeline.EvaluateFrom("t", evals, WarmupFrames))
			offloads += stats.Offloads
			uplink += stats.UplinkBytes
		}
		r.Addf("%-6.2f %9.3f %12s %10d %12d", t, acc.MeanIoU(),
			pct(acc.FalseRate(metrics.StrictThreshold)), offloads, uplink/1024)
	}
	return r
}

// AblationCompressionBudget sweeps what the CFRS tile partition saves on
// the uplink against a uniform-high-quality policy, isolating the bandwidth
// claim of Section V.
func AblationCompressionBudget(seed int64, frames int) *Result {
	if frames == 0 {
		frames = DefaultClipFrames
	}
	r := &Result{ID: "AblBW", Title: "CFRS uplink bytes vs uniform encoding"}
	clips := dataset.KITTI(seed, frames)
	full := RunClips(SysEdgeISNoCFRS, clips, netsim.WiFi5, device.IPhone11, seed)
	cfrs := RunClips(SysEdgeIS, clips, netsim.WiFi5, device.IPhone11, seed)
	r.Addf("uniform-high keyframes: %6d KB over %d offloads",
		full.Stats.UplinkBytes/1024, full.Stats.Offloads)
	r.Addf("CFRS tile encoding:     %6d KB over %d offloads",
		cfrs.Stats.UplinkBytes/1024, cfrs.Stats.Offloads)
	if full.Stats.Offloads > 0 && cfrs.Stats.Offloads > 0 {
		perFull := float64(full.Stats.UplinkBytes) / float64(full.Stats.Offloads)
		perCFRS := float64(cfrs.Stats.UplinkBytes) / float64(cfrs.Stats.Offloads)
		r.Addf("per-offload reduction: %s", pct(metrics.Reduction(perFull, perCFRS)))
	}
	r.Addf("accuracy: uniform %.3f vs CFRS %.3f IoU", full.Acc.MeanIoU(), cfrs.Acc.MeanIoU())
	return r
}

// All runs every experiment, in paper order.
func All(seed int64, frames int) []*Result {
	return []*Result{
		Fig2b(seed),
		Fig9(seed, frames),
		Fig10(seed, frames),
		Fig11(seed, frames),
		Fig12(seed, frames),
		Fig13(seed, frames),
		Fig14(seed),
		Fig15(seed, 0),
		Fig16(seed, frames),
		Fig17(seed, 0),
		PowerStudy(seed),
		AblationContourK(seed, frames),
		AblationOffloadThreshold(seed, frames),
		AblationCompressionBudget(seed, frames),
	}
}
