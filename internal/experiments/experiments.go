// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI). Each FigNN function runs the corresponding
// workload through the simulation pipeline and returns a Result holding
// both the measured values and the paper's reported numbers, so reports
// show reproduction fidelity side by side. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded outcomes.
package experiments

import (
	"fmt"
	"strings"

	"edgeis/internal/baseline"
	"edgeis/internal/core"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/parallel"
	"edgeis/internal/pipeline"
)

// WarmupFrames excludes the shared VO-initialization transient from
// accuracy statistics (the paper's clips run minutes; ours run seconds).
const WarmupFrames = 60

// DefaultClipFrames is the per-clip length used by the experiment suite.
const DefaultClipFrames = 210

// EvalCamera is the simulated camera used by all experiments.
func EvalCamera() geom.Camera { return geom.StandardCamera(320, 240) }

// Result is one reproduced table/figure.
type Result struct {
	ID    string
	Title string
	Lines []string
}

// Addf appends a formatted line.
func (r *Result) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Render returns the printable report block.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "===== %s: %s =====\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// SystemKind enumerates the systems and ablation arms under test.
type SystemKind int

// Systems.
const (
	SysEdgeIS SystemKind = iota + 1
	SysEAAR
	SysEdgeDuet
	SysBestEffort
	SysMobileOnly
	// Ablation arms (Fig. 16).
	SysEdgeISNoCIIA
	SysEdgeISNoCFRS
	SysEdgeISMAMTOnly
	SysBaseCFRS
	SysBaseCIIA
)

// String names the system.
func (k SystemKind) String() string {
	switch k {
	case SysEdgeIS:
		return "edgeIS"
	case SysEAAR:
		return "EAAR"
	case SysEdgeDuet:
		return "EdgeDuet"
	case SysBestEffort:
		return "best-effort"
	case SysMobileOnly:
		return "mobile-only"
	case SysEdgeISNoCIIA:
		return "edgeIS w/o CIIA"
	case SysEdgeISNoCFRS:
		return "edgeIS w/o CFRS"
	case SysEdgeISMAMTOnly:
		return "base+MAMT"
	case SysBaseCFRS:
		return "base+CFRS"
	case SysBaseCIIA:
		return "base+CIIA"
	default:
		return fmt.Sprintf("system(%d)", int(k))
	}
}

// NewStrategy instantiates a system under test.
func NewStrategy(kind SystemKind, cam geom.Camera, dev device.Profile, seed int64) pipeline.Strategy {
	switch kind {
	case SysEdgeIS:
		return core.NewSystem(core.Config{Camera: cam, Device: dev, Seed: seed})
	case SysEAAR:
		return baseline.NewEAAR(cam, dev)
	case SysEdgeDuet:
		return baseline.NewEdgeDuet(cam, dev)
	case SysBestEffort:
		return baseline.NewBestEffort(cam, dev)
	case SysMobileOnly:
		return baseline.NewMobileOnly(cam, dev, seed)
	case SysEdgeISNoCIIA:
		return core.NewSystem(core.Config{
			Camera: cam, Device: dev, Seed: seed, DisableGuidance: true,
		})
	case SysEdgeISNoCFRS:
		return core.NewSystem(core.Config{
			Camera: cam, Device: dev, Seed: seed, DisableCFRS: true,
		})
	case SysEdgeISMAMTOnly:
		return core.NewSystem(core.Config{
			Camera: cam, Device: dev, Seed: seed,
			DisableGuidance: true, DisableCFRS: true,
		})
	case SysBaseCFRS:
		return baseline.NewVariant(cam, dev, baseline.VariantConfig{
			Name: "base+CFRS", Encode: baseline.EncodeCFRSLike,
			KeyframeInterval: 10,
		})
	case SysBaseCIIA:
		// CIIA changes inference speed, not content selection: this arm
		// streams every frame like the baseline but with a latest-wins
		// queue — guidance built from stale frames buried in a deep queue
		// would mislead the model rather than accelerate it.
		return baseline.NewVariant(cam, dev, baseline.VariantConfig{
			Name: "base+CIIA", Encode: baseline.EncodeUniformHigh,
			KeyframeInterval: 1, QueueDepth: 1, UseGuidance: true,
		})
	default:
		panic(fmt.Sprintf("experiments: unknown system %d", int(kind)))
	}
}

// RunOutcome aggregates one system's run over a set of clips.
type RunOutcome struct {
	Acc   *metrics.Accumulator
	Stats pipeline.RunStats
}

// clipOutcome is one clip's contribution, merged in clip order.
type clipOutcome struct {
	acc   *metrics.Accumulator
	stats pipeline.RunStats
}

// RunClips executes a system over clips on a network medium. Each clip uses
// a fresh strategy instance (a new session), matching how the paper runs
// each video independently.
func RunClips(kind SystemKind, clips []dataset.Clip, medium netsim.Medium, dev device.Profile, seed int64) RunOutcome {
	cam := EvalCamera()
	return RunCustomClips(kind.String(), clips, medium, seed, func(cfgSeed int64) pipeline.Strategy {
		return NewStrategy(kind, cam, dev, cfgSeed)
	})
}

// RunCustomClips evaluates a caller-built strategy over clips, fanning the
// independent clip runs across the worker pool. Every stochastic component
// is seeded from the per-clip seed and all mutable state (strategy, engine,
// extractor, links) is constructed inside the clip run, so clips execute
// concurrently yet the merged outcome is byte-identical to a serial run:
// results are merged strictly in clip order. build receives the per-clip
// seed and must return a fresh strategy each call.
func RunCustomClips(name string, clips []dataset.Clip, medium netsim.Medium, seed int64, build func(cfgSeed int64) pipeline.Strategy) RunOutcome {
	return RunCustomClipsEngine(name, clips, medium, seed, nil, build)
}

// RunCustomClipsEngine is RunCustomClips with an engine-config hook: mutate
// (nil = no-op) edits each clip's pipeline.Config after the standard fields
// are filled, for experiments that exercise edge-side engine features (e.g.
// the skip-compute keyframe policy) rather than strategy-side knobs.
func RunCustomClipsEngine(name string, clips []dataset.Clip, medium netsim.Medium, seed int64, mutate func(*pipeline.Config), build func(cfgSeed int64) pipeline.Strategy) RunOutcome {
	cam := EvalCamera()
	outs := parallel.Map(clips, func(i int, clip dataset.Clip) clipOutcome {
		cfg := pipeline.Config{
			World:       clip.World,
			Camera:      cam,
			Trajectory:  clip.Traj,
			Frames:      clip.Frames,
			CameraSpeed: clip.CameraSpeed,
			Medium:      medium,
			Seed:        seed + int64(i)*101,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		engine := pipeline.NewEngine(cfg, build(cfg.Seed))
		evals, stats := engine.Run()
		return clipOutcome{
			acc:   pipeline.EvaluateFrom(name, evals, WarmupFrames),
			stats: stats,
		}
	})
	acc := metrics.NewAccumulator(name)
	var total pipeline.RunStats
	for _, o := range outs {
		acc.Merge(o.acc)
		total.Add(o.stats)
	}
	return RunOutcome{Acc: acc, Stats: total}
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
