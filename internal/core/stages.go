package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"edgeis/internal/accel"
	"edgeis/internal/baseline"
	"edgeis/internal/codec"
	"edgeis/internal/mask"
	"edgeis/internal/metrics"
	"edgeis/internal/roisel"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
	"edgeis/internal/transfer"
	"edgeis/internal/vo"
)

// Stage names reported through StageObserver, one per step of the tracking
// path: the MAMT transfer stages, the CFRS selection stages, and the CIIA
// plan build.
const (
	StageMAMTPredict  = "mamt.predict"
	StageMAMTZClip    = "mamt.zclip"
	StageCFRSNewAreas = "cfrs.newareas"
	StageCFRSDecide   = "cfrs.decide"
	StageCFRSEncode   = "cfrs.encode"
	StageCIIAPlan     = "ciia.plan"
)

// StageObserver receives wall-clock timings of the mobile pipeline's named
// stages, one call per stage per tracking frame. Observers see real elapsed
// time (the host's, not the simulated device's) — the hook exists for
// profiling where mobile milliseconds are spent, and must not feed back into
// the simulation.
type StageObserver interface {
	ObserveStage(frameIndex int, stage string, elapsed time.Duration)
}

// SetStageObserver installs the per-stage timing hook (nil disables it).
func (s *System) SetStageObserver(o StageObserver) { s.stageObs = o }

// stageStart begins timing a stage; the returned func reports it. With no
// observer installed both halves are no-ops, so the tracking path pays
// nothing for the hook.
func (s *System) stageStart(frameIndex int, stage string) func() {
	if s.stageObs == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.stageObs.ObserveStage(frameIndex, stage, time.Since(start)) }
}

// StageTimer is a StageObserver that aggregates per-stage call counts and
// total elapsed time.
type StageTimer struct {
	acc map[string]*stageAgg
}

type stageAgg struct {
	Count int
	Total time.Duration
}

// NewStageTimer returns an empty aggregating observer.
func NewStageTimer() *StageTimer {
	return &StageTimer{acc: make(map[string]*stageAgg)}
}

// ObserveStage implements StageObserver.
func (t *StageTimer) ObserveStage(_ int, stage string, elapsed time.Duration) {
	a := t.acc[stage]
	if a == nil {
		a = &stageAgg{}
		t.acc[stage] = a
	}
	a.Count++
	a.Total += elapsed
}

// Count returns how many times a stage was observed.
func (t *StageTimer) Count(stage string) int {
	if a := t.acc[stage]; a != nil {
		return a.Count
	}
	return 0
}

// Total returns the accumulated elapsed time of a stage.
func (t *StageTimer) Total(stage string) time.Duration {
	if a := t.acc[stage]; a != nil {
		return a.Total
	}
	return 0
}

// Summary renders one "stage count total mean" line per observed stage,
// sorted by stage name.
func (t *StageTimer) Summary() string {
	names := make([]string, 0, len(t.acc))
	for name := range t.acc {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		a := t.acc[name]
		mean := time.Duration(0)
		if a.Count > 0 {
			mean = a.Total / time.Duration(a.Count)
		}
		fmt.Fprintf(&b, "%-14s calls=%-5d total=%-12s mean=%s\n", name, a.Count, a.Total, mean)
	}
	return b.String()
}

// trackingState carries intermediate products between the tracking stages of
// one frame.
type trackingState struct {
	preds    []transfer.Prediction
	masks    []metrics.PredictedMask
	boxes    []mask.Box
	priors   []accel.ObjectPrior
	newAreas []mask.Box
	fs       roisel.FrameState
}

// stagePredict is MAMT's transfer step: reproject every cached mask into the
// current frame through the VO poses.
func (s *System) stagePredict(f *scene.Frame, ts *trackingState) {
	// Park aged chained entries in run-length form on the frame clock, not
	// only on edge results: when CFRS decides nothing needs offloading, no
	// results arrive, and without this the chained predictions would bleed
	// the mask pool dry at one set per frame. Compacting (unlike evicting
	// here) leaves every entry selectable, so transfer outputs are
	// byte-identical with or without it.
	s.pred.Compact(f.Index - compactAge)
	ts.preds = s.pred.PredictAll(s.vo, f.Index)
	s.lastPredictions = ts.preds
}

// stageZClip is MAMT's display step. Transferred masks are full silhouettes,
// but what the user sees (and the ground truth annotates) is the visible
// part: the VO knows each instance's camera depth, so nearer masks clip
// farther ones exactly like the renderer's painter pass. The clipped set
// becomes the display output and primes the fallback tracker.
func (s *System) stageZClip(f *scene.Frame, ts *trackingState) {
	preds := ts.preds
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	depth := func(i int) float64 {
		if inst := s.vo.Instance(preds[i].InstanceID); inst != nil {
			return inst.MeanDepth
		}
		return 1e18
	}
	sort.Slice(order, func(a, b int) bool { return depth(order[a]) < depth(order[b]) })
	occluded := s.pool.Get(s.cfg.Camera.Width, s.cfg.Camera.Height)
	clipped := make([]*mask.Bitmask, len(preds))
	for _, i := range order {
		m := s.pool.Get(preds[i].Mask.Width, preds[i].Mask.Height)
		m.CopyFrom(preds[i].Mask)
		m.Subtract(occluded)
		occluded.Union(preds[i].Mask)
		clipped[i] = m
	}
	s.pool.Put(occluded) // never escapes this stage

	ts.masks = make([]metrics.PredictedMask, 0, len(preds))
	ts.boxes = make([]mask.Box, 0, len(preds))
	ts.priors = make([]accel.ObjectPrior, 0, len(preds))
	tms := make([]baseline.TrackedMask, 0, len(preds))
	for i, p := range preds {
		ts.masks = append(ts.masks, metrics.PredictedMask{Label: p.Label, Mask: clipped[i]})
		b := p.Mask.BoundingBox()
		ts.boxes = append(ts.boxes, b)
		ts.priors = append(ts.priors, accel.ObjectPrior{Box: b, Label: p.Label})
		tm := s.pool.Get(clipped[i].Width, clipped[i].Height)
		tm.CopyFrom(clipped[i])
		tms = append(tms, baseline.TrackedMask{Label: p.Label, Mask: tm, SourceFrame: f.Index})
	}
	// The clipped set becomes this frame's display output; route it through
	// the ring so its storage returns to the pool once the engine has moved
	// past it.
	s.retireDisplay(clipped)
	if len(tms) > 0 {
		// Keep the fallback tracker primed with the latest good masks so a
		// later tracking loss degrades to classical MV tracking instead of
		// a blank screen. The tracker takes ownership of the clones.
		s.fallback.SetMasks(tms)
	}
}

// stageNewAreas is CFRS's content analysis: unlabeled feature pixels mark
// screen regions no edge mask has covered yet, grouped into new-content
// boxes, and the frame state for the offload decision is assembled.
func (s *System) stageNewAreas(f *scene.Frame, ts *trackingState) {
	s.lastUnlabeledPix = s.lastUnlabeledPix[:0]
	if rec := s.vo.FrameRecordAt(f.Index); rec != nil {
		for i, pid := range rec.PointIDs {
			unlabeled := pid == 0
			if !unlabeled {
				if mp := s.vo.Map().ByID(pid); mp != nil && mp.Label == vo.LabelUnknown {
					unlabeled = true
				}
			}
			if unlabeled {
				px := rec.Keypoints[i].Pixel
				s.lastUnlabeledPix = append(s.lastUnlabeledPix,
					struct{ X, Y float64 }{px.X, px.Y})
			}
		}
	}
	ts.newAreas = expandAreas(roisel.NewAreasFromUnlabeled(s.grid, s.lastUnlabeledPix, 2),
		codec.TileSize, s.cfg.Camera.Width, s.cfg.Camera.Height)

	moving := 0
	for _, inst := range s.vo.Instances() {
		if inst.Moving {
			moving++
		}
	}
	ts.fs = roisel.FrameState{
		Index:             f.Index,
		UnlabeledFraction: s.vo.UnlabeledFraction(),
		MovingObjects:     moving,
		ObjectBoxes:       ts.boxes,
		NewAreas:          ts.newAreas,
	}
}

// stageDecide is CFRS's offload trigger (or the fixed keyframe cadence when
// CFRS is ablated away).
func (s *System) stageDecide(ts *trackingState) bool {
	if s.cfg.DisableCFRS {
		return s.framesSinceKeyframe >= s.cfg.KeyframeInterval
	}
	offload, _ := s.sel.Decide(ts.fs)
	return offload
}

// stageEncode is CFRS's tile-level encoding: the selector partitions the
// frame into quality levels and the codec prices the result. Returns nil
// only on a partition/grid mismatch, which the selector's sizing rules out.
func (s *System) stageEncode(ts *trackingState) *codec.EncodedFrame {
	if s.cfg.DisableCFRS {
		return codec.EncodeUniform(s.grid, codec.QualityHigh, nil)
	}
	levels, cover := s.sel.Partition(s.grid, ts.fs)
	ef, err := codec.Encode(s.grid, levels, cover)
	if err != nil {
		return nil // cannot happen: levels sized from grid
	}
	return ef
}

// stagePlan is CIIA's guidance build: transferred boxes and new-content
// areas instruct the edge model's anchor placement and RoI pruning.
func (s *System) stagePlan(ts *trackingState) segmodel.Guidance {
	return accel.BuildPlan(ts.priors, ts.newAreas, s.cfg.Camera.Width, s.cfg.Camera.Height, 0)
}
