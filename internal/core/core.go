// Package core assembles the complete edgeIS system — the paper's primary
// contribution. It wires the three components around the "transfer+infer"
// paradigm (Fig. 4):
//
//   - Motion Aware Mobile Mask Transfer (packages vo + transfer): the VO
//     tracks the device and each object; cached masks are transferred to
//     every frame by contour reprojection.
//   - Contour Instructed edge Inference Acceleration (package accel): the
//     transferred masks instruct the edge model's anchor placement and RoI
//     pruning.
//   - Content-based Fine-grained RoI Selection (packages roisel + codec):
//     offload triggers and tile-level encoding.
//
// System implements pipeline.Strategy, so it can run head-to-head against
// the baselines on identical scenarios. The ablation switches correspond to
// the module study of Fig. 16.
package core

import (
	"edgeis/internal/accel"
	"edgeis/internal/baseline"
	"edgeis/internal/codec"
	"edgeis/internal/device"
	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/metrics"
	"edgeis/internal/pipeline"
	"edgeis/internal/roisel"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
	"edgeis/internal/transfer"
	"edgeis/internal/vo"
)

// Config assembles an edgeIS mobile system.
type Config struct {
	Camera geom.Camera
	Device device.Profile
	Seed   int64

	VO       vo.Config
	Transfer transfer.Config
	Selector roisel.Config

	// DisableGuidance turns CIIA off (edge runs the vanilla model) — the
	// "w/o CIIA" ablation.
	DisableGuidance bool
	// DisableCFRS turns content-based selection off: keyframes ship on a
	// fixed cadence at uniform high quality — the "w/o CFRS" ablation.
	DisableCFRS bool
	// KeyframeInterval is the fixed cadence used when CFRS is disabled
	// (default 10 frames).
	KeyframeInterval int
}

func (c *Config) applyDefaults() {
	if c.Device.Name == "" {
		c.Device = device.IPhone11
	}
	if c.VO.Camera.Width == 0 {
		c.VO.Camera = c.Camera
		c.VO.Seed = c.Seed
	}
	if c.KeyframeInterval == 0 {
		c.KeyframeInterval = 10
	}
}

// SessionStats counts session-level events for observability.
type SessionStats struct {
	InitAttempts int // staged initialization pairs
	InitFailures int // CompleteInitialization errors (degenerate geometry)
	LostEvents   int // tracking losses requiring re-initialization
	EdgeResults  int // edge inference results consumed
	StaleResults int // results too old to apply (frame record evicted)
	InitResults  int // results received for initialization frames
	InitEmpty    int // initialization results with no usable masks
}

// cacheHorizon is how many frames transfer-cache entries stay usable as
// transfer sources before eviction reclaims them (and their pooled
// storage); see transfer.Predictor.Evict.
const cacheHorizon = 90

// compactAge is how many frames behind the present the transfer cache parks
// chained entries in run-length form (transfer.Predictor.Compact), returning
// their dense buffers to the mask pool. Must stay above 1: the engine reads
// the last frame's prediction masks (Guidance/CIIA) until the next frame
// replaces them, so the freshest chained entries must keep their buffers.
const compactAge = 3

// displayRingDepth is how many display mask sets stay live before their
// storage is recycled. The pipeline engine retains the latest non-empty
// output as display state until the next non-empty output replaces it, and
// per-frame evaluation reads the current output; three sets comfortably
// outlive both.
const displayRingDepth = 3

// System is the edgeIS mobile runtime. It implements pipeline.Strategy.
type System struct {
	cfg  Config
	vo   *vo.System
	pred *transfer.Predictor
	sel  *roisel.Selector
	grid codec.Grid

	// pool recycles per-frame mask scratch (z-clip chain, display clones,
	// fallback tracker updates, transfer rasterization) so steady-state
	// tracking frames allocate no masks.
	pool *mask.Pool
	// displayRing holds the last displayRingDepth non-empty output mask
	// sets; pushing a new set recycles the oldest (see retireDisplay).
	displayRing [displayRingDepth][]*mask.Bitmask

	// fallback is a motion-vector tracker that keeps masks on screen while
	// the VO (re-)initializes — without it the screen would be empty for
	// the whole init window, which no deployed system would accept.
	fallback *baseline.Tracker

	// pendingInit holds edge results awaited for the initialization pair.
	initRef, initCur     int
	awaitingInit         bool
	awaitingSince        int
	initResults          map[int][]vo.LabeledMask
	stats                SessionStats
	lastPredictions      []transfer.Prediction
	lastUnlabeledPix     []struct{ X, Y float64 }
	framesSinceKeyframe  int
	cpu                  device.CPUModel
	mem                  *device.MemoryModel
	lastMemSampleFrame   int
	offloadedThisSession int
	stageObs             StageObserver
}

var _ pipeline.Strategy = (*System)(nil)

// NewSystem builds the edgeIS runtime.
func NewSystem(cfg Config) *System {
	cfg.applyDefaults()
	pool := mask.NewPool()
	s := &System{
		cfg:         cfg,
		vo:          vo.NewSystem(cfg.VO),
		pred:        transfer.NewPredictor(cfg.Camera, cfg.Transfer),
		sel:         roisel.NewSelector(cfg.Selector),
		grid:        codec.NewGrid(cfg.Camera.Width, cfg.Camera.Height),
		pool:        pool,
		fallback:    baseline.NewTrackerPooled(baseline.TrackMotionVector, pool),
		initResults: make(map[int][]vo.LabeledMask),
		mem:         device.NewMemoryModel(cfg.Device),
	}
	s.pred.SetPool(pool)
	return s
}

// Name implements pipeline.Strategy.
func (s *System) Name() string {
	switch {
	case s.cfg.DisableGuidance && s.cfg.DisableCFRS:
		return "edgeIS (MAMT only)"
	case s.cfg.DisableGuidance:
		return "edgeIS (w/o CIIA)"
	case s.cfg.DisableCFRS:
		return "edgeIS (w/o CFRS)"
	default:
		return "edgeIS"
	}
}

// VO exposes the odometry (read-only use in tests/metrics).
func (s *System) VO() *vo.System { return s.vo }

// AwaitingEdgeResult implements pipeline.ResultAwaiter: until the VO reaches
// tracking, the system is blocked on edge masks (the initialization window),
// so a live engine may block briefly for the in-flight result.
func (s *System) AwaitingEdgeResult() bool { return s.vo.State() != vo.StatusTracking }

// Selector exposes the CFRS selector for reason accounting.
func (s *System) Selector() *roisel.Selector { return s.sel }

// Stats returns session-level event counters.
func (s *System) Stats() SessionStats { return s.stats }

// CPU returns the CPU utilization model.
func (s *System) CPU() *device.CPUModel { return &s.cpu }

// Memory returns the memory model.
func (s *System) Memory() *device.MemoryModel { return s.mem }

// toKeypoints converts extractor output for the VO.
func toKeypoints(feats []feature.Feature) []vo.Keypoint {
	out := make([]vo.Keypoint, len(feats))
	for i, f := range feats {
		out[i] = vo.Keypoint{Pixel: f.Pixel, Descriptor: f.Descriptor, Sharpness: f.Sharpness}
	}
	return out
}

// ProcessFrame implements pipeline.Strategy: one camera frame through the
// full mobile pipeline.
func (s *System) ProcessFrame(f *scene.Frame, feats []feature.Feature, nowMs float64) pipeline.FrameOutput {
	st := s.vo.ProcessFrame(f.Index, toKeypoints(feats))
	s.fallback.Step(feats)

	out := pipeline.FrameOutput{}
	switch st {
	case vo.StatusInitPairReady:
		// Request masks for the staged pair; if a previous request lost
		// one of its results (edge queue replacement under load), the
		// timeout retransmits both frames. The timeout must exceed the
		// worst case of two sequential unguided inferences plus transfers
		// (~1 s), or the retry itself evicts the second request forever.
		const initRetryFrames = 40
		if !s.awaitingInit || f.Index-s.awaitingSince > initRetryFrames {
			out = s.handleInitPair(f)
		}
		out.Masks = s.fallbackMasks()
	case vo.StatusTracking:
		out = s.handleTracking(f)
	case vo.StatusLost:
		s.stats.LostEvents++
		s.vo.Reset()
		// The old predictor's pooled cache masks are abandoned to the GC;
		// the pool itself carries over to the replacement.
		s.pred = transfer.NewPredictor(s.cfg.Camera, s.cfg.Transfer)
		s.pred.SetPool(s.pool)
		out.Masks = s.fallbackMasks()
	default: // collecting
		out.Masks = s.fallbackMasks()
	}

	out.ComputeMs += s.cfg.Device.MobileFrameMs(len(s.vo.Instances()))
	s.cpu.Add(out.ComputeMs, pipeline.FrameBudgetMs)
	if f.Index-s.lastMemSampleFrame >= 15 {
		s.mem.Sample(s.vo.Map().Len(), f.Index-s.lastMemSampleFrame, s.pred.CacheSize())
		s.lastMemSampleFrame = f.Index
	}
	s.framesSinceKeyframe++
	return out
}

// fallbackMasks converts the MV tracker state for display. The masks are
// pool-cloned and pushed through the display ring so the engine never
// aliases tracker-owned storage, which the tracker recycles on its own
// schedule.
func (s *System) fallbackMasks() []metrics.PredictedMask {
	tms := s.fallback.Masks()
	if len(tms) == 0 {
		return nil
	}
	out := make([]metrics.PredictedMask, 0, len(tms))
	set := make([]*mask.Bitmask, 0, len(tms))
	for _, tm := range tms {
		c := s.pool.Get(tm.Mask.Width, tm.Mask.Height)
		c.CopyFrom(tm.Mask)
		set = append(set, c)
		out = append(out, metrics.PredictedMask{Label: tm.Label, Mask: c})
	}
	s.retireDisplay(set)
	return out
}

// retireDisplay records a non-empty mask set that is about to become the
// engine's display state and recycles the set pushed displayRingDepth
// non-empty outputs ago. By then the engine has replaced it as display at
// least twice over, so no reference can remain. Empty outputs never reach
// the ring — the engine keeps the previous display on those frames.
func (s *System) retireDisplay(set []*mask.Bitmask) {
	if len(set) == 0 {
		return
	}
	last := displayRingDepth - 1
	s.pool.Put(s.displayRing[last]...)
	copy(s.displayRing[1:], s.displayRing[:last])
	s.displayRing[0] = set
}

// handleInitPair ships both staged initialization frames at full quality.
func (s *System) handleInitPair(f *scene.Frame) pipeline.FrameOutput {
	ref, cur, ok := s.vo.PendingInitPair()
	if !ok {
		return pipeline.FrameOutput{}
	}
	if ref != s.initRef || cur != s.initCur {
		// A new pair invalidates results gathered for the previous one;
		// a retransmit of the same pair keeps any partial result.
		s.initResults = make(map[int][]vo.LabeledMask)
	}
	s.initRef, s.initCur = ref, cur
	s.stats.InitAttempts++
	s.awaitingInit = true
	s.awaitingSince = f.Index

	var offs []*pipeline.OffloadRequest
	for _, idx := range []int{ref, cur} {
		ef := codec.EncodeUniform(s.grid, codec.QualityHigh, nil)
		offs = append(offs, &pipeline.OffloadRequest{
			FrameIndex:   idx,
			PayloadBytes: ef.Bytes,
			EncodeMs:     ef.EncodeMs * s.cfg.Device.EncodeMul,
			Quality:      ef.QualityAt,
		})
	}
	_ = f
	return pipeline.FrameOutput{Offloads: offs}
}

// handleTracking drives the tracking path as a sequence of named stages —
// MAMT's transfer and z-clipped display, CFRS's content analysis, offload
// decision and encode, and CIIA's plan build — each reported through the
// StageObserver hook when one is installed.
func (s *System) handleTracking(f *scene.Frame) pipeline.FrameOutput {
	ts := &trackingState{}

	done := s.stageStart(f.Index, StageMAMTPredict)
	s.stagePredict(f, ts)
	done()

	done = s.stageStart(f.Index, StageMAMTZClip)
	s.stageZClip(f, ts)
	done()

	done = s.stageStart(f.Index, StageCFRSNewAreas)
	s.stageNewAreas(f, ts)
	done()

	out := pipeline.FrameOutput{Masks: ts.masks}

	done = s.stageStart(f.Index, StageCFRSDecide)
	offload := s.stageDecide(ts)
	done()
	if !offload {
		return out
	}
	s.framesSinceKeyframe = 0
	s.offloadedThisSession++

	done = s.stageStart(f.Index, StageCFRSEncode)
	ef := s.stageEncode(ts)
	done()
	if ef == nil {
		return out // cannot happen: levels sized from grid
	}
	req := &pipeline.OffloadRequest{
		FrameIndex:   f.Index,
		PayloadBytes: ef.Bytes,
		EncodeMs:     ef.EncodeMs * s.cfg.Device.EncodeMul,
		Quality:      ef.QualityAt,
	}
	if !s.cfg.DisableGuidance {
		done = s.stageStart(f.Index, StageCIIAPlan)
		req.Guidance = s.stagePlan(ts)
		done()
	}
	out.Offloads = []*pipeline.OffloadRequest{req}
	return out
}

// HandleEdgeResult implements pipeline.Strategy: edge masks flow back into
// the VO map (mask-assisted mapping) and the transfer cache.
func (s *System) HandleEdgeResult(res pipeline.EdgeResult, f *scene.Frame, nowMs float64) {
	labeled := make([]vo.LabeledMask, 0, len(res.Detections))
	for _, d := range res.Detections {
		if d.Mask == nil {
			continue
		}
		labeled = append(labeled, vo.LabeledMask{Label: d.Label, Mask: d.Mask})
	}

	if s.awaitingInit {
		if res.FrameIndex == s.initRef || res.FrameIndex == s.initCur {
			s.stats.InitResults++
			if len(labeled) == 0 {
				s.stats.InitEmpty++
			}
			s.initResults[res.FrameIndex] = labeled
		}
		if len(labeled) > 0 {
			s.primeFallback(labeled, res.FrameIndex)
		}
		if len(s.initResults) == 2 {
			err := s.vo.CompleteInitialization(
				s.initResults[s.initRef], s.initResults[s.initCur])
			s.awaitingInit = false
			if err != nil {
				s.stats.InitFailures++
			}
			if err == nil {
				s.seedCache(s.initRef, s.initResults[s.initRef])
				s.seedCache(s.initCur, s.initResults[s.initCur])
				s.sel.NoteEdgeResult(s.initCur)
			}
			s.initResults = make(map[int][]vo.LabeledMask)
		}
		return
	}

	s.stats.EdgeResults++
	if s.vo.State() != vo.StatusTracking && len(labeled) > 0 {
		// While the VO is down, fresh edge masks still refresh the
		// fallback tracker.
		s.primeFallback(labeled, res.FrameIndex)
	}
	if err := s.vo.AnnotateFrame(res.FrameIndex, labeled); err != nil {
		s.stats.StaleResults++
		return // frame record already evicted; result too stale to use
	}
	s.seedCache(res.FrameIndex, labeled)
	s.sel.NoteEdgeResult(res.FrameIndex)
	s.pred.Evict(res.FrameIndex - cacheHorizon)
}

// primeFallback feeds edge masks into the MV fallback tracker.
func (s *System) primeFallback(labeled []vo.LabeledMask, frameIdx int) {
	tms := make([]baseline.TrackedMask, 0, len(labeled))
	for _, lm := range labeled {
		c := s.pool.Get(lm.Mask.Width, lm.Mask.Height)
		c.CopyFrom(lm.Mask)
		tms = append(tms, baseline.TrackedMask{
			Label: lm.Label, Mask: c, SourceFrame: frameIdx,
		})
	}
	s.fallback.SetMasks(tms)
}

// seedCache maps edge masks to VO instances and stores them as transfer
// sources. A mask belongs to the instance whose points (observed in that
// frame) it covers the most.
func (s *System) seedCache(frameIdx int, labeled []vo.LabeledMask) {
	rec := s.vo.FrameRecordAt(frameIdx)
	if rec == nil {
		return
	}
	for _, lm := range labeled {
		bestInst, bestCount := 0, 0
		counts := make(map[int]int)
		for i, pid := range rec.PointIDs {
			if pid == 0 {
				continue
			}
			mp := s.vo.Map().ByID(pid)
			if mp == nil || mp.InstanceID == 0 {
				continue
			}
			px := rec.Keypoints[i].Pixel
			if lm.Mask.At(int(px.X), int(px.Y)) {
				counts[mp.InstanceID]++
				if counts[mp.InstanceID] > bestCount {
					bestInst, bestCount = mp.InstanceID, counts[mp.InstanceID]
				}
			}
		}
		if bestInst == 0 || bestCount < 3 {
			continue
		}
		inst := s.vo.Instance(bestInst)
		if inst == nil || inst.Label != lm.Label {
			continue
		}
		s.pred.Put(&transfer.CachedMask{
			FrameIndex: frameIdx,
			InstanceID: bestInst,
			Label:      lm.Label,
			Mask:       lm.Mask,
			FromEdge:   true,
		})
	}
}

// Guidance builds the current CIIA plan (exposed for the acceleration
// benchmarks, which drive the edge model directly).
func (s *System) Guidance(width, height int) segmodel.Guidance {
	if s.cfg.DisableGuidance {
		return nil
	}
	priors := make([]accel.ObjectPrior, 0, len(s.lastPredictions))
	for _, p := range s.lastPredictions {
		priors = append(priors, accel.ObjectPrior{Box: p.Mask.BoundingBox(), Label: p.Label})
	}
	newAreas := expandAreas(roisel.NewAreasFromUnlabeled(s.grid, s.lastUnlabeledPix, 2),
		codec.TileSize, s.cfg.Camera.Width, s.cfg.Camera.Height)
	return accel.BuildPlan(priors, newAreas, width, height, 0)
}

// expandAreas grows new-content boxes by a margin so freshly appearing
// objects whose features straddle tile borders stay covered.
func expandAreas(areas []mask.Box, margin, w, h int) []mask.Box {
	out := make([]mask.Box, 0, len(areas))
	for _, b := range areas {
		out = append(out, b.Expand(margin, w, h))
	}
	return out
}
