package core

import (
	"testing"

	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
)

func testConfig(seed int64) (pipeline.Config, Config) {
	cam := geom.StandardCamera(320, 240)
	w := scene.StreetScene(scene.PresetConfig{Seed: seed, ObjectCount: 3})
	return pipeline.Config{
			World:       w,
			Camera:      cam,
			Trajectory:  scene.InspectionRoute(scene.WalkSpeed),
			Frames:      180,
			CameraSpeed: scene.WalkSpeed,
			Medium:      netsim.WiFi5,
			Seed:        seed,
		}, Config{
			Camera: cam, Device: device.IPhone11, Seed: seed,
		}
}

func run(t *testing.T, pcfg pipeline.Config, ccfg Config) (*System, []pipeline.FrameEval, pipeline.RunStats) {
	t.Helper()
	sys := NewSystem(ccfg)
	engine := pipeline.NewEngine(pcfg, sys)
	evals, stats := engine.Run()
	return sys, evals, stats
}

func TestSystemEndToEnd(t *testing.T) {
	pcfg, ccfg := testConfig(3)
	sys, evals, stats := run(t, pcfg, ccfg)

	acc := pipeline.EvaluateFrom("edgeIS", evals, 60)
	if acc.Samples() == 0 {
		t.Fatal("no samples")
	}
	if acc.MeanIoU() < 0.6 {
		t.Errorf("mean IoU = %.3f", acc.MeanIoU())
	}
	if stats.Offloads == 0 {
		t.Error("never offloaded")
	}
	st := sys.Stats()
	if st.InitAttempts == 0 || st.EdgeResults == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(sys.VO().Instances()) == 0 {
		t.Error("no instances tracked")
	}
}

func TestSystemName(t *testing.T) {
	cam := geom.StandardCamera(64, 64)
	tests := []struct {
		cfg  Config
		want string
	}{
		{Config{Camera: cam}, "edgeIS"},
		{Config{Camera: cam, DisableGuidance: true}, "edgeIS (w/o CIIA)"},
		{Config{Camera: cam, DisableCFRS: true}, "edgeIS (w/o CFRS)"},
		{Config{Camera: cam, DisableGuidance: true, DisableCFRS: true}, "edgeIS (MAMT only)"},
	}
	for _, tt := range tests {
		if got := NewSystem(tt.cfg).Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestSystemCFRSReducesUplink(t *testing.T) {
	pcfg, ccfg := testConfig(5)
	_, _, statsFull := run(t, pcfg, ccfg)

	pcfg2, ccfg2 := testConfig(5)
	ccfg2.DisableCFRS = true
	_, _, statsNoCFRS := run(t, pcfg2, ccfg2)

	if statsFull.Offloads == 0 || statsNoCFRS.Offloads == 0 {
		t.Fatal("no offloads to compare")
	}
	perFull := float64(statsFull.UplinkBytes) / float64(statsFull.Offloads)
	perNo := float64(statsNoCFRS.UplinkBytes) / float64(statsNoCFRS.Offloads)
	if perFull >= perNo {
		t.Errorf("CFRS per-offload bytes %.0f should undercut uniform %.0f", perFull, perNo)
	}
}

func TestSystemGuidanceSpeedsEdge(t *testing.T) {
	pcfg, ccfg := testConfig(7)
	_, _, statsGuided := run(t, pcfg, ccfg)

	pcfg2, ccfg2 := testConfig(7)
	ccfg2.DisableGuidance = true
	_, _, statsVanilla := run(t, pcfg2, ccfg2)

	if statsGuided.EdgeResultCount == 0 || statsVanilla.EdgeResultCount == 0 {
		t.Fatal("no edge results")
	}
	guidedMean := statsGuided.EdgeInferMsSum / float64(statsGuided.EdgeResultCount)
	vanillaMean := statsVanilla.EdgeInferMsSum / float64(statsVanilla.EdgeResultCount)
	if guidedMean >= vanillaMean {
		t.Errorf("guided inference %.1f ms should undercut vanilla %.1f ms",
			guidedMean, vanillaMean)
	}
}

func TestSystemResourceModels(t *testing.T) {
	pcfg, ccfg := testConfig(9)
	sys, _, _ := run(t, pcfg, ccfg)
	cpu := sys.CPU().Utilization()
	if cpu <= 0.3 || cpu > 1 {
		t.Errorf("CPU utilization = %.2f, want roughly the paper's ~0.75", cpu)
	}
	if sys.Memory().Peak() <= 0 {
		t.Error("no memory samples")
	}
	if !sys.Memory().WithinBudget() {
		t.Error("memory exceeded device budget")
	}
}

func TestSystemMasksMatchTruth(t *testing.T) {
	pcfg, ccfg := testConfig(11)
	sys := NewSystem(ccfg)
	engine := pipeline.NewEngine(pcfg, sys)
	evals, _ := engine.Run()
	// At least half of the post-warmup frames should carry predictions
	// scoring above the loose threshold for some object.
	good := 0
	total := 0
	for _, ev := range evals {
		if ev.Index < 60 {
			continue
		}
		total++
		for _, iou := range ev.IoUs {
			if iou >= metrics.LooseThreshold {
				good++
				break
			}
		}
	}
	if total == 0 || float64(good)/float64(total) < 0.5 {
		t.Errorf("only %d/%d frames had a loose-correct mask", good, total)
	}
}

func TestSystemGuidancePlanExposed(t *testing.T) {
	pcfg, ccfg := testConfig(13)
	sys, _, _ := run(t, pcfg, ccfg)
	g := sys.Guidance(pcfg.Camera.Width, pcfg.Camera.Height)
	if g == nil {
		t.Fatal("no guidance after a tracked run")
	}
	full := pcfg.Camera.Width * pcfg.Camera.Height
	if b := g.AnchorBudget(pcfg.Camera.Width, pcfg.Camera.Height); b <= 0 || b > full {
		t.Errorf("anchor budget = %d", b)
	}
	// Disabled guidance returns nil.
	ccfg.DisableGuidance = true
	if NewSystem(ccfg).Guidance(64, 64) != nil {
		t.Error("disabled guidance should be nil")
	}
}
