package core_test

import (
	"testing"

	"edgeis/internal/core"
	"edgeis/internal/device"
	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
)

// allocProbe wraps the edgeIS system and records how many mask backing
// arrays each ProcessFrame call allocates.
type allocProbe struct {
	inner  *core.System
	deltas []uint64
}

func (p *allocProbe) Name() string { return p.inner.Name() }

func (p *allocProbe) ProcessFrame(f *scene.Frame, feats []feature.Feature, nowMs float64) pipeline.FrameOutput {
	before := mask.Allocs()
	out := p.inner.ProcessFrame(f, feats, nowMs)
	p.deltas = append(p.deltas, mask.Allocs()-before)
	return out
}

func (p *allocProbe) HandleEdgeResult(res pipeline.EdgeResult, f *scene.Frame, nowMs float64) {
	p.inner.HandleEdgeResult(res, f, nowMs)
}

func (p *allocProbe) AwaitingEdgeResult() bool { return p.inner.AwaitingEdgeResult() }

// TestSteadyStateTrackingAllocatesNoMasks pins the pooling tentpole: once
// the system is warm (pool filled to the working-set high-water mark, cache
// eviction horizons reached), per-frame processing on the tracking path
// performs zero mask allocations. Mask allocations are counted
// process-globally, so the probe snapshots around each ProcessFrame;
// edge-result handling (decode, VO annotation) is allowed to allocate — it
// runs per offload, not per frame.
func TestSteadyStateTrackingAllocatesNoMasks(t *testing.T) {
	cfg := pipeline.Config{
		World:       scene.StreetScene(scene.PresetConfig{Seed: 17, ObjectCount: 3}),
		Camera:      geom.StandardCamera(320, 240),
		Trajectory:  scene.InspectionRoute(scene.WalkSpeed),
		Frames:      400,
		CameraSpeed: scene.WalkSpeed,
		Medium:      netsim.WiFi5,
		Seed:        17,
	}
	probe := &allocProbe{inner: core.NewSystem(core.Config{
		Camera: cfg.Camera, Device: device.IPhone11, Seed: cfg.Seed,
	})}
	pipeline.NewEngine(cfg, probe).Run()

	if len(probe.deltas) != cfg.Frames {
		t.Fatalf("probe saw %d frames, want %d", len(probe.deltas), cfg.Frames)
	}
	// Warmup covers initialization and the offload-heavy early phase, during
	// which the pool grows to the working-set high-water mark (last observed
	// allocation is around frame 61; per-frame cache compaction keeps the
	// chained working set bounded after that).
	const warmup = 120
	total := uint64(0)
	for i := warmup; i < len(probe.deltas); i++ {
		if probe.deltas[i] != 0 {
			t.Errorf("frame %d allocated %d masks", i, probe.deltas[i])
		}
		total += probe.deltas[i]
	}
	if total != 0 {
		t.Fatalf("steady-state frames allocated %d masks, want 0", total)
	}
}
