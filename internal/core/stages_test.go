package core

import (
	"strings"
	"testing"
	"time"

	"edgeis/internal/pipeline"
)

// TestStageObserverCoversTrackingPath runs a clip with a StageTimer
// installed and checks every named tracking stage reports, with counts that
// respect the pipeline's structure.
func TestStageObserverCoversTrackingPath(t *testing.T) {
	pcfg, ccfg := testConfig(3)
	pcfg.Frames = 120
	sys := NewSystem(ccfg)
	timer := NewStageTimer()
	sys.SetStageObserver(timer)
	_, stats := pipeline.NewEngine(pcfg, sys).Run()

	perFrame := []string{StageMAMTPredict, StageMAMTZClip, StageCFRSNewAreas, StageCFRSDecide}
	for _, stage := range perFrame {
		if timer.Count(stage) == 0 {
			t.Errorf("stage %s never observed", stage)
		}
	}
	// Predict and z-clip run in lockstep, once per tracked frame.
	if timer.Count(StageMAMTPredict) != timer.Count(StageMAMTZClip) {
		t.Errorf("predict observed %d times, zclip %d", timer.Count(StageMAMTPredict), timer.Count(StageMAMTZClip))
	}
	// Encode and plan only run on offloaded frames, decide on every tracked
	// frame — so the offload stages must be strictly rarer.
	if timer.Count(StageCFRSEncode) == 0 || timer.Count(StageCFRSEncode) >= timer.Count(StageCFRSDecide) {
		t.Errorf("encode observed %d times vs decide %d", timer.Count(StageCFRSEncode), timer.Count(StageCFRSDecide))
	}
	if timer.Count(StageCIIAPlan) != timer.Count(StageCFRSEncode) {
		t.Errorf("plan observed %d times, encode %d", timer.Count(StageCIIAPlan), timer.Count(StageCFRSEncode))
	}
	if stats.Offloads == 0 {
		t.Fatal("clip never offloaded; stage ratios unchecked")
	}

	sum := timer.Summary()
	for _, stage := range perFrame {
		if !strings.Contains(sum, stage) {
			t.Errorf("summary missing stage %s:\n%s", stage, sum)
		}
	}
}

// TestStageObserverOffByDefault checks the hook costs nothing when unset
// and can be cleared again.
func TestStageObserverOffByDefault(t *testing.T) {
	sys := NewSystem(Config{})
	done := sys.stageStart(0, StageMAMTPredict)
	done() // must not panic with no observer

	timer := NewStageTimer()
	sys.SetStageObserver(timer)
	sys.stageStart(1, StageMAMTPredict)()
	if timer.Count(StageMAMTPredict) != 1 {
		t.Fatalf("count = %d, want 1", timer.Count(StageMAMTPredict))
	}
	if timer.Total(StageMAMTPredict) < 0 {
		t.Fatal("negative elapsed time")
	}
	sys.SetStageObserver(nil)
	sys.stageStart(2, StageMAMTPredict)()
	if timer.Count(StageMAMTPredict) != 1 {
		t.Fatal("observer still firing after clear")
	}
	if timer.Total("missing") != time.Duration(0) || timer.Count("missing") != 0 {
		t.Fatal("unobserved stage must read zero")
	}
}
