package baseline

import (
	"edgeis/internal/accel"
	"edgeis/internal/codec"
	"edgeis/internal/device"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/pipeline"
)

// EncodeMode selects the transmission encoding of a custom strategy —
// the variable the Fig. 16 module ablation sweeps.
type EncodeMode int

// Encoding modes.
const (
	// EncodeUniformHigh ships whole frames at high quality (best-effort).
	EncodeUniformHigh EncodeMode = iota + 1
	// EncodeRoIBoxes ships tracked-object boxes high, the rest medium
	// (EAAR-style RoI encoding).
	EncodeRoIBoxes
	// EncodeSmallPriority ships small objects high, large objects medium,
	// the rest low (EdgeDuet's tile policy).
	EncodeSmallPriority
	// EncodeCFRSLike ships object tiles high, a context band medium, the
	// rest low — the CFRS partition applied to tracker state (the
	// "baseline + CFRS" ablation arm, which lacks VO new-area signals).
	EncodeCFRSLike
)

// VariantConfig assembles a custom track+detect strategy for ablations.
type VariantConfig struct {
	Name    string
	Tracker TrackerKind
	// KeyframeInterval is the offload cadence (frames).
	KeyframeInterval int
	// QueueDepth is the edge queue the strategy implies (0 = latest-wins).
	QueueDepth int
	Encode     EncodeMode
	// UseGuidance attaches a CIIA plan built from the tracker's cached
	// masks to each offload (the "baseline + CIIA" ablation arm).
	UseGuidance bool
}

// NewVariant builds a custom strategy from the configuration.
func NewVariant(cam geom.Camera, dev device.Profile, cfg VariantConfig) *EdgeStrategy {
	if cfg.KeyframeInterval == 0 {
		cfg.KeyframeInterval = 10
	}
	if cfg.Tracker == 0 {
		cfg.Tracker = TrackMotionVector
	}
	s := &EdgeStrategy{
		name:             cfg.Name,
		camera:           cam,
		dev:              dev,
		grid:             codec.NewGrid(cam.Width, cam.Height),
		tracker:          NewTracker(cfg.Tracker),
		keyframeInterval: cfg.KeyframeInterval,
		queueDepth:       cfg.QueueDepth,
		useGuidance:      cfg.UseGuidance,
	}
	switch cfg.Encode {
	case EncodeRoIBoxes:
		s.encode = encodeRoIBoxes
	case EncodeSmallPriority:
		s.encode = encodeSmallPriority
	case EncodeCFRSLike:
		s.encode = encodeCFRSLike
	default:
		s.encode = encodeUniformHigh
	}
	return s
}

func encodeUniformHigh(s *EdgeStrategy) (*codec.EncodedFrame, error) {
	return codec.EncodeUniform(s.grid, codec.QualityHigh, nil), nil
}

func encodeRoIBoxes(s *EdgeStrategy) (*codec.EncodedFrame, error) {
	levels := make([]codec.QualityLevel, s.grid.Tiles())
	for i := range levels {
		levels[i] = codec.QualityMedium
	}
	for _, tm := range s.tracker.Masks() {
		b := tm.Mask.BoundingBox().Expand(24, s.camera.Width, s.camera.Height)
		for _, tl := range s.grid.TilesInBox(b) {
			levels[tl] = codec.QualityHigh
		}
	}
	return codec.Encode(s.grid, levels, nil)
}

func encodeSmallPriority(s *EdgeStrategy) (*codec.EncodedFrame, error) {
	levels := make([]codec.QualityLevel, s.grid.Tiles())
	for i := range levels {
		levels[i] = codec.QualityLow
	}
	for _, tm := range s.tracker.Masks() {
		b := tm.Mask.BoundingBox()
		lvl := codec.QualityMedium
		if b.Area() <= smallObjectArea {
			lvl = codec.QualityHigh
		}
		for _, tl := range s.grid.TilesInBox(b.Expand(codec.TileSize, s.camera.Width, s.camera.Height)) {
			if levels[tl] < lvl {
				levels[tl] = lvl
			}
		}
	}
	return codec.Encode(s.grid, levels, nil)
}

func encodeCFRSLike(s *EdgeStrategy) (*codec.EncodedFrame, error) {
	levels := make([]codec.QualityLevel, s.grid.Tiles())
	for i := range levels {
		levels[i] = codec.QualityLow
	}
	for _, tm := range s.tracker.Masks() {
		b := tm.Mask.BoundingBox()
		for _, tl := range s.grid.TilesInBox(b) {
			levels[tl] = codec.QualityHigh
		}
		ctx := b.Expand(codec.TileSize, s.camera.Width, s.camera.Height)
		for _, tl := range s.grid.TilesInBox(ctx) {
			if levels[tl] < codec.QualityMedium {
				levels[tl] = codec.QualityMedium
			}
		}
	}
	return codec.Encode(s.grid, levels, nil)
}

// guidancePlan builds a CIIA plan from the tracker's cached masks. Unlike
// edgeIS, the baseline has no motion-aware new-area detection, so a
// full-frame unknown area keeps uncovered objects detectable: without it a
// single missed detection would lock the object out of every future
// instructed inference. The plan therefore saves second-stage work (RoI
// pruning in the known areas) but cannot shrink the anchor grid.
func (s *EdgeStrategy) guidancePlan() *accel.Plan {
	priors := make([]accel.ObjectPrior, 0, len(s.tracker.Masks()))
	for _, tm := range s.tracker.Masks() {
		priors = append(priors, accel.ObjectPrior{
			Box:   tm.Mask.BoundingBox(),
			Label: tm.Label,
		})
	}
	if len(priors) == 0 {
		return nil
	}
	whole := []mask.Box{{MinX: 0, MinY: 0, MaxX: s.camera.Width, MaxY: s.camera.Height}}
	return accel.BuildPlan(priors, whole, s.camera.Width, s.camera.Height, 0)
}

// attachGuidance wires the plan into an offload request when enabled.
func (s *EdgeStrategy) attachGuidance(req *pipeline.OffloadRequest) {
	if !s.useGuidance {
		return
	}
	if plan := s.guidancePlan(); plan != nil {
		req.Guidance = plan
	}
}
