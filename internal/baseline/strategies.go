package baseline

import (
	"edgeis/internal/codec"
	"edgeis/internal/device"
	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/metrics"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
)

// MobileOnly runs the segmentation model entirely on the device
// (the TensorFlow Lite baseline of Section VI-B). Inference takes several
// camera intervals, so the engine drops frames and the screen content
// grows stale — the mechanism behind its 78.3% false rate in Fig. 9.
type MobileOnly struct {
	Camera geom.Camera
	Device device.Profile
	Model  *segmodel.Model
	Seed   int64
}

var _ pipeline.Strategy = (*MobileOnly)(nil)

// NewMobileOnly builds the pure-mobile baseline.
func NewMobileOnly(cam geom.Camera, dev device.Profile, seed int64) *MobileOnly {
	return &MobileOnly{Camera: cam, Device: dev, Model: segmodel.New(segmodel.MaskRCNN), Seed: seed}
}

// Name implements pipeline.Strategy.
func (m *MobileOnly) Name() string { return "mobile-only" }

// ProcessFrame implements pipeline.Strategy.
func (m *MobileOnly) ProcessFrame(f *scene.Frame, feats []feature.Feature, nowMs float64) pipeline.FrameOutput {
	in := inputFromFrame(m.Camera, f, nil, m.Seed)
	res := m.Model.Run(in, nil)
	return pipeline.FrameOutput{
		Masks:     masksFromDetections(res.Detections),
		ComputeMs: res.TotalMs() * m.Device.InferScale,
	}
}

// HandleEdgeResult implements pipeline.Strategy (never called: no offloads).
func (m *MobileOnly) HandleEdgeResult(pipeline.EdgeResult, *scene.Frame, float64) {}

// EdgeStrategy is the shared skeleton of the offloading baselines: a local
// tracker bridges the frames between edge results; a transmission policy
// decides cadence and encoding.
type EdgeStrategy struct {
	name    string
	camera  geom.Camera
	dev     device.Profile
	grid    codec.Grid
	tracker *Tracker

	// KeyframeInterval is the offload cadence in frames; 1 = every frame.
	keyframeInterval int
	// queueDepth is the edge queue this strategy implies (see
	// pipeline.QueuePreference); 0 means the engine default (latest-wins).
	queueDepth int
	// encode produces the per-tile levels for an offloaded frame.
	encode func(s *EdgeStrategy) (*codec.EncodedFrame, error)
	// useGuidance attaches a CIIA plan from tracker state (Fig. 16's
	// "baseline + CIIA" arm).
	useGuidance bool

	sinceKeyframe int
}

var _ pipeline.Strategy = (*EdgeStrategy)(nil)

// NewBestEffort builds the best-effort edge baseline (Section VI-B): every
// frame ships at uniform high quality; a motion-vector scheme tracks masks
// locally while results are in flight.
func NewBestEffort(cam geom.Camera, dev device.Profile) *EdgeStrategy {
	s := &EdgeStrategy{
		name:             "best-effort-edge",
		camera:           cam,
		dev:              dev,
		grid:             codec.NewGrid(cam.Width, cam.Height),
		tracker:          NewTracker(TrackMotionVector),
		keyframeInterval: 1,
		// A plain streaming pipeline buffers frames blindly; the edge
		// serves them long after capture (Section VI-B's "best effort
		// strategy"), which is exactly why it loses.
		queueDepth: 24,
	}
	s.encode = func(s *EdgeStrategy) (*codec.EncodedFrame, error) {
		return codec.EncodeUniform(s.grid, codec.QualityHigh, nil), nil
	}
	return s
}

// PreferredQueueDepth implements pipeline.QueuePreference.
func (s *EdgeStrategy) PreferredQueueDepth() int { return s.queueDepth }

// NewEAAR builds the adapted EAAR baseline: motion-vector local tracking,
// keyframe offloads with RoI-based encoding — object regions (predicted by
// translating cached boxes with the motion vector, "more coarse" per the
// paper) at high quality, the rest at medium.
func NewEAAR(cam geom.Camera, dev device.Profile) *EdgeStrategy {
	s := &EdgeStrategy{
		name:             "EAAR",
		camera:           cam,
		dev:              dev,
		grid:             codec.NewGrid(cam.Width, cam.Height),
		tracker:          NewTracker(TrackMotionVector),
		keyframeInterval: 10,
	}
	s.encode = func(s *EdgeStrategy) (*codec.EncodedFrame, error) {
		levels := make([]codec.QualityLevel, s.grid.Tiles())
		for i := range levels {
			levels[i] = codec.QualityMedium
		}
		for _, tm := range s.tracker.Masks() {
			// Coarse RoI: the whole expanded bounding box at high quality.
			b := tm.Mask.BoundingBox().Expand(24, s.camera.Width, s.camera.Height)
			for _, tl := range s.grid.TilesInBox(b) {
				levels[tl] = codec.QualityHigh
			}
		}
		return codec.Encode(s.grid, levels, nil)
	}
	return s
}

// smallObjectArea is EdgeDuet's small-object pixel threshold.
const smallObjectArea = 4000

// NewEdgeDuet builds the adapted EdgeDuet baseline: KCF-style local
// tracking and tile-level offloading that "only preserves small objects in
// high resolution", charging large objects medium quality.
func NewEdgeDuet(cam geom.Camera, dev device.Profile) *EdgeStrategy {
	s := &EdgeStrategy{
		name:             "EdgeDuet",
		camera:           cam,
		dev:              dev,
		grid:             codec.NewGrid(cam.Width, cam.Height),
		tracker:          NewTracker(TrackKCF),
		keyframeInterval: 10,
	}
	s.encode = func(s *EdgeStrategy) (*codec.EncodedFrame, error) {
		levels := make([]codec.QualityLevel, s.grid.Tiles())
		for i := range levels {
			levels[i] = codec.QualityLow
		}
		for _, tm := range s.tracker.Masks() {
			b := tm.Mask.BoundingBox()
			lvl := codec.QualityMedium
			if b.Area() <= smallObjectArea {
				lvl = codec.QualityHigh // small objects prioritized
			}
			for _, tl := range s.grid.TilesInBox(b.Expand(codec.TileSize, s.camera.Width, s.camera.Height)) {
				if levels[tl] < lvl {
					levels[tl] = lvl
				}
			}
		}
		return codec.Encode(s.grid, levels, nil)
	}
	return s
}

// Name implements pipeline.Strategy.
func (s *EdgeStrategy) Name() string { return s.name }

// Tracker exposes the local tracker (tests).
func (s *EdgeStrategy) Tracker() *Tracker { return s.tracker }

// ProcessFrame implements pipeline.Strategy.
func (s *EdgeStrategy) ProcessFrame(f *scene.Frame, feats []feature.Feature, nowMs float64) pipeline.FrameOutput {
	s.tracker.Step(feats)

	masks := make([]metrics.PredictedMask, 0, len(s.tracker.Masks()))
	for _, tm := range s.tracker.Masks() {
		masks = append(masks, metrics.PredictedMask{Label: tm.Label, Mask: tm.Mask})
	}
	// Local tracking cost: feature matching plus a per-mask update.
	compute := s.dev.ExtractMs + 2 + 1.5*float64(len(masks))

	out := pipeline.FrameOutput{Masks: masks, ComputeMs: compute}
	s.sinceKeyframe++
	if s.sinceKeyframe >= s.keyframeInterval {
		s.sinceKeyframe = 0
		ef, err := s.encode(s)
		if err == nil {
			req := &pipeline.OffloadRequest{
				FrameIndex:   f.Index,
				PayloadBytes: ef.Bytes,
				EncodeMs:     ef.EncodeMs * s.dev.EncodeMul,
				Quality:      ef.QualityAt,
			}
			s.attachGuidance(req)
			out.Offloads = []*pipeline.OffloadRequest{req}
		}
	}
	return out
}

// HandleEdgeResult implements pipeline.Strategy: fresh masks replace the
// tracker state (the cached-result update of the track+detect loop).
func (s *EdgeStrategy) HandleEdgeResult(res pipeline.EdgeResult, f *scene.Frame, nowMs float64) {
	tms := make([]TrackedMask, 0, len(res.Detections))
	for _, d := range res.Detections {
		if d.Mask == nil {
			continue
		}
		tms = append(tms, TrackedMask{
			Label:       d.Label,
			Mask:        d.Mask.Clone(),
			SourceFrame: res.FrameIndex,
		})
	}
	if len(tms) > 0 {
		s.tracker.SetMasks(tms)
	}
}

// inputFromFrame converts scene ground truth into a model input (shared by
// the mobile-only baseline, which runs the model locally).
func inputFromFrame(cam geom.Camera, f *scene.Frame, quality func(x, y int) float64, seed int64) segmodel.Input {
	objs := make([]segmodel.ObjectTruth, 0, len(f.Objects))
	for _, gt := range f.Objects {
		objs = append(objs, segmodel.ObjectTruth{
			ObjectID: gt.ObjectID,
			Label:    int(gt.Class),
			Visible:  gt.Visible,
			Box:      gt.Box,
		})
	}
	return segmodel.Input{
		Width: cam.Width, Height: cam.Height,
		Objects: objs, Quality: quality,
		Seed: seed*7_919 + int64(f.Index),
	}
}

// masksFromDetections converts model output for display.
func masksFromDetections(dets []segmodel.Detection) []metrics.PredictedMask {
	out := make([]metrics.PredictedMask, 0, len(dets))
	for _, d := range dets {
		if d.Mask == nil {
			continue
		}
		out = append(out, metrics.PredictedMask{Label: d.Label, Mask: d.Mask})
	}
	return out
}

// boxArea is a small helper for tests.
func boxArea(b mask.Box) int { return b.Area() }
