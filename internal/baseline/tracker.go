// Package baseline implements the comparison systems of Section VI-B:
// pure mobile inference, best-effort edge offloading with motion-vector
// tracking, and the two adapted prior systems EAAR (Liu et al.) and
// EdgeDuet — each combining a local mask tracker with its own transmission
// strategy, with the edge running the same (unaccelerated) Mask R-CNN as
// edgeIS.
package baseline

import (
	"math"

	"edgeis/internal/feature"
	"edgeis/internal/mask"
)

// TrackedMask is a cached instance mask a local tracker keeps updated.
type TrackedMask struct {
	Label int
	Mask  *mask.Bitmask
	// SourceFrame is the keyframe the mask was last corrected on.
	SourceFrame int
}

// TrackerKind selects the local update rule.
type TrackerKind int

// Tracker kinds of the compared systems.
const (
	// TrackMotionVector translates masks by the mean feature displacement
	// inside them — EAAR's and the best-effort baseline's scheme.
	TrackMotionVector TrackerKind = iota + 1
	// TrackKCF additionally follows scale changes (correlation-filter
	// style), EdgeDuet's local tracker.
	TrackKCF
)

// Tracker updates cached masks frame to frame using feature matches — the
// "track" half of the classical track+detect paradigm (Section II-A).
type Tracker struct {
	Kind      TrackerKind
	prevFeats []feature.Feature
	masks     []TrackedMask
}

// NewTracker builds a tracker.
func NewTracker(kind TrackerKind) *Tracker {
	return &Tracker{Kind: kind}
}

// SetMasks replaces the cached masks (a keyframe result arrived).
func (t *Tracker) SetMasks(masks []TrackedMask) {
	t.masks = masks
}

// Masks returns the current cached masks.
func (t *Tracker) Masks() []TrackedMask { return t.masks }

// Step advances every cached mask using matches between the previous and
// the current frame's features, then stores the current features for the
// next step.
func (t *Tracker) Step(feats []feature.Feature) {
	defer func() {
		t.prevFeats = feats
	}()
	if len(t.prevFeats) == 0 || len(t.masks) == 0 {
		return
	}
	matches := feature.MatchFeatures(t.prevFeats, feats)
	for i := range t.masks {
		t.masks[i].Mask = t.advance(t.masks[i].Mask, matches, feats)
	}
}

// advance applies the tracker's motion model to one mask.
func (t *Tracker) advance(m *mask.Bitmask, matches []feature.Match, feats []feature.Feature) *mask.Bitmask {
	box := m.BoundingBox()
	if box.Empty() {
		return m
	}
	// Collect displacements of features that started inside the mask box.
	var dxs, dys []float64
	var p0s, p1s []struct{ X, Y float64 }
	for _, mt := range matches {
		p0 := t.prevFeats[mt.A].Pixel
		if !box.Contains(int(p0.X), int(p0.Y)) {
			continue
		}
		p1 := feats[mt.B].Pixel
		dxs = append(dxs, p1.X-p0.X)
		dys = append(dys, p1.Y-p0.Y)
		p0s = append(p0s, struct{ X, Y float64 }{p0.X, p0.Y})
		p1s = append(p1s, struct{ X, Y float64 }{p1.X, p1.Y})
	}
	if len(dxs) < 2 {
		return m // nothing to go on; keep the stale mask
	}
	dx := median(dxs)
	dy := median(dys)
	out := m.Translate(int(math.Round(dx)), int(math.Round(dy)))

	if t.Kind == TrackKCF && len(p0s) >= 4 {
		// Scale estimate: ratio of mean pairwise spreads (the scale term a
		// correlation filter with a scale pyramid recovers).
		s := spreadRatio(p0s, p1s)
		if s > 0.5 && s < 2 && math.Abs(s-1) > 0.01 {
			c, ok := out.CenterOfMass()
			if ok {
				out = out.ScaleAround(c.X, c.Y, s)
			}
		}
	}
	return out
}

// median returns the median of a small slice (destructive sort-free
// selection is unnecessary at these sizes).
func median(vs []float64) float64 {
	cp := append([]float64(nil), vs...)
	// Insertion sort: n is tens at most.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// spreadRatio compares the mean distance-from-centroid of matched point
// sets, a robust isotropic scale estimate.
func spreadRatio(p0s, p1s []struct{ X, Y float64 }) float64 {
	spread := func(ps []struct{ X, Y float64 }) float64 {
		var cx, cy float64
		for _, p := range ps {
			cx += p.X
			cy += p.Y
		}
		n := float64(len(ps))
		cx /= n
		cy /= n
		s := 0.0
		for _, p := range ps {
			s += math.Hypot(p.X-cx, p.Y-cy)
		}
		return s / n
	}
	s0 := spread(p0s)
	if s0 < 1e-9 {
		return 1
	}
	return spread(p1s) / s0
}
