// Package baseline implements the comparison systems of Section VI-B:
// pure mobile inference, best-effort edge offloading with motion-vector
// tracking, and the two adapted prior systems EAAR (Liu et al.) and
// EdgeDuet — each combining a local mask tracker with its own transmission
// strategy, with the edge running the same (unaccelerated) Mask R-CNN as
// edgeIS.
package baseline

import (
	"math"

	"edgeis/internal/feature"
	"edgeis/internal/mask"
)

// TrackedMask is a cached instance mask a local tracker keeps updated.
type TrackedMask struct {
	Label int
	Mask  *mask.Bitmask
	// SourceFrame is the keyframe the mask was last corrected on.
	SourceFrame int
}

// TrackerKind selects the local update rule.
type TrackerKind int

// Tracker kinds of the compared systems.
const (
	// TrackMotionVector translates masks by the mean feature displacement
	// inside them — EAAR's and the best-effort baseline's scheme.
	TrackMotionVector TrackerKind = iota + 1
	// TrackKCF additionally follows scale changes (correlation-filter
	// style), EdgeDuet's local tracker.
	TrackKCF
)

// graveDepth is how many Steps a replaced mask survives before its storage
// is recycled. Consumers alias tracker masks into frame outputs (the
// pipeline engine keeps the latest output as display state for one more
// frame), so retired masks must outlive those short-lived references; three
// steps is comfortably past every reader in the tree.
const graveDepth = 3

// Tracker updates cached masks frame to frame using feature matches — the
// "track" half of the classical track+detect paradigm (Section II-A).
//
// Masks handed to SetMasks are owned by the tracker from then on: their
// storage is recycled through the pool a few Steps after they are replaced.
// Callers must pass masks nothing else will touch (a Clone, typically) and
// must treat masks read via Masks() as valid only for the current and next
// few frames, not retained indefinitely.
type Tracker struct {
	Kind      TrackerKind
	prevFeats []feature.Feature
	masks     []TrackedMask

	pool  *mask.Pool
	grave [graveDepth][]*mask.Bitmask // grave[i] = masks retired i Steps ago

	// Per-step scratch, reused so steady-state stepping allocates nothing.
	dxs, dys, med []float64
	p0s, p1s      []struct{ X, Y float64 }
}

// NewTracker builds a tracker with its own private mask pool.
func NewTracker(kind TrackerKind) *Tracker {
	return NewTrackerPooled(kind, mask.NewPool())
}

// NewTrackerPooled builds a tracker drawing scratch masks from the given
// pool (nil allocates). Sharing one pool across components keeps the total
// number of live mask buffers at the working-set size.
func NewTrackerPooled(kind TrackerKind, pool *mask.Pool) *Tracker {
	return &Tracker{Kind: kind, pool: pool}
}

// SetMasks replaces the cached masks (a keyframe result arrived), taking
// ownership of the new masks. The previous masks enter the reclaim ring.
func (t *Tracker) SetMasks(masks []TrackedMask) {
	for i := range t.masks {
		t.grave[0] = append(t.grave[0], t.masks[i].Mask)
	}
	t.masks = masks
}

// Masks returns the current cached masks. The mask pixels are valid until
// graveDepth further Steps have run; clone to retain longer.
func (t *Tracker) Masks() []TrackedMask { return t.masks }

// Step advances every cached mask using matches between the previous and
// the current frame's features, then stores the current features for the
// next step.
func (t *Tracker) Step(feats []feature.Feature) {
	// Rotate the reclaim ring: masks retired graveDepth Steps ago can no
	// longer be referenced by any consumer and return to the pool.
	last := graveDepth - 1
	t.pool.Put(t.grave[last]...)
	oldest := t.grave[last][:0]
	copy(t.grave[1:], t.grave[:last])
	t.grave[0] = oldest

	defer func() {
		t.prevFeats = feats
	}()
	if len(t.prevFeats) == 0 || len(t.masks) == 0 {
		return
	}
	matches := feature.MatchFeatures(t.prevFeats, feats)
	for i := range t.masks {
		next := t.advance(t.masks[i].Mask, matches, feats)
		if next != t.masks[i].Mask {
			t.grave[0] = append(t.grave[0], t.masks[i].Mask)
			t.masks[i].Mask = next
		}
	}
}

// advance applies the tracker's motion model to one mask, returning either
// a pooled replacement or m itself when there is nothing to go on.
func (t *Tracker) advance(m *mask.Bitmask, matches []feature.Match, feats []feature.Feature) *mask.Bitmask {
	box := m.BoundingBox()
	if box.Empty() {
		return m
	}
	// Collect displacements of features that started inside the mask box.
	dxs, dys := t.dxs[:0], t.dys[:0]
	p0s, p1s := t.p0s[:0], t.p1s[:0]
	for _, mt := range matches {
		p0 := t.prevFeats[mt.A].Pixel
		if !box.Contains(int(p0.X), int(p0.Y)) {
			continue
		}
		p1 := feats[mt.B].Pixel
		dxs = append(dxs, p1.X-p0.X)
		dys = append(dys, p1.Y-p0.Y)
		p0s = append(p0s, struct{ X, Y float64 }{p0.X, p0.Y})
		p1s = append(p1s, struct{ X, Y float64 }{p1.X, p1.Y})
	}
	t.dxs, t.dys, t.p0s, t.p1s = dxs, dys, p0s, p1s
	if len(dxs) < 2 {
		return m // nothing to go on; keep the stale mask
	}
	dx := t.median(dxs)
	dy := t.median(dys)
	out := t.pool.Get(m.Width, m.Height)
	m.TranslateInto(out, int(math.Round(dx)), int(math.Round(dy)))

	if t.Kind == TrackKCF && len(p0s) >= 4 {
		// Scale estimate: ratio of mean pairwise spreads (the scale term a
		// correlation filter with a scale pyramid recovers).
		s := spreadRatio(p0s, p1s)
		if s > 0.5 && s < 2 && math.Abs(s-1) > 0.01 {
			c, ok := out.CenterOfMass()
			if ok {
				scaled := t.pool.Get(out.Width, out.Height)
				out.ScaleAroundInto(scaled, c.X, c.Y, s)
				t.pool.Put(out) // never escaped; reclaim immediately
				out = scaled
			}
		}
	}
	return out
}

// median returns the median of a small slice, sorting into the tracker's
// scratch buffer so the caller's slice is untouched.
func (t *Tracker) median(vs []float64) float64 {
	cp := append(t.med[:0], vs...)
	t.med = cp
	// Insertion sort: n is tens at most.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// spreadRatio compares the mean distance-from-centroid of matched point
// sets, a robust isotropic scale estimate.
func spreadRatio(p0s, p1s []struct{ X, Y float64 }) float64 {
	spread := func(ps []struct{ X, Y float64 }) float64 {
		var cx, cy float64
		for _, p := range ps {
			cx += p.X
			cy += p.Y
		}
		n := float64(len(ps))
		cx /= n
		cy /= n
		s := 0.0
		for _, p := range ps {
			s += math.Hypot(p.X-cx, p.Y-cy)
		}
		return s / n
	}
	s0 := spread(p0s)
	if s0 < 1e-9 {
		return 1
	}
	return spread(p1s) / s0
}
