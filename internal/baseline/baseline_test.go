package baseline

import (
	"testing"

	"edgeis/internal/device"
	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/mask"
	"edgeis/internal/pipeline"
	"edgeis/internal/scene"
	"edgeis/internal/segmodel"
)

func testWorldAndFrames(n int) (*scene.World, geom.Camera, []*scene.Frame, *feature.Extractor) {
	w := scene.NewWorld(scene.WorldConfig{Seed: 5}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(-1, 1, 9), Half: geom.V3(1.6, 1, 1)},
		{Class: scene.Person, Center: geom.V3(2.5, 0.9, 7), Half: geom.V3(0.35, 0.9, 0.35)},
	})
	cam := geom.StandardCamera(320, 240)
	traj := scene.WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(-2, 1.6, -2), geom.V3(3, 1.6, -1)},
		Target:    geom.V3(0, 1, 9), Speed: scene.WalkSpeed,
	}
	frames := w.RenderSequence(cam, traj, n)
	return w, cam, frames, feature.NewExtractor(w, cam, feature.DefaultConfig(), 9)
}

// resultFor fabricates an edge result with ground-truth masks for a frame.
func resultFor(f *scene.Frame) pipeline.EdgeResult {
	res := pipeline.EdgeResult{FrameIndex: f.Index}
	for _, gt := range f.Objects {
		res.Detections = append(res.Detections, segmodel.Detection{
			ObjectID: gt.ObjectID, Label: int(gt.Class),
			Mask: gt.Visible.Clone(), Box: gt.Box, Score: 0.9,
		})
	}
	return res
}

func TestTrackerMotionVectorFollowsTranslation(t *testing.T) {
	w, cam, frames, ex := testWorldAndFrames(30)
	_ = w
	tr := NewTracker(TrackMotionVector)

	// Seed with frame 0's ground truth.
	f0 := frames[0]
	var tms []TrackedMask
	for _, gt := range f0.Objects {
		tms = append(tms, TrackedMask{Label: int(gt.Class), Mask: gt.Visible.Clone(), SourceFrame: 0})
	}
	tr.Step(ex.Extract(f0, scene.WalkSpeed))
	tr.SetMasks(tms)

	for _, f := range frames[1:] {
		tr.Step(ex.Extract(f, scene.WalkSpeed))
	}
	last := frames[len(frames)-1]

	// Tracked masks should beat the untracked frame-0 masks.
	for i, tm := range tr.Masks() {
		gt := last.GroundTruthFor(f0.Objects[i].ObjectID)
		if gt == nil {
			continue
		}
		tracked := mask.IoU(tm.Mask, gt.Visible)
		stale := mask.IoU(f0.Objects[i].Visible, gt.Visible)
		if tracked < stale-0.05 {
			t.Errorf("object %d: tracked IoU %.3f worse than stale %.3f", i, tracked, stale)
		}
	}
	_ = cam
}

func TestTrackerKCFScales(t *testing.T) {
	// KCF follows scale; MV does not. On an approach trajectory the KCF
	// track must beat the MV track.
	w := scene.NewWorld(scene.WorldConfig{Seed: 6}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(0, 1, 10), Half: geom.V3(1.6, 1, 1)},
	})
	cam := geom.StandardCamera(320, 240)
	traj := scene.WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(0, 1.6, -4), geom.V3(0, 1.6, 4)},
		Target:    geom.V3(0, 1, 10), Speed: scene.WalkSpeed,
	}
	frames := w.RenderSequence(cam, traj, 60)

	run := func(kind TrackerKind) float64 {
		ex := feature.NewExtractor(w, cam, feature.DefaultConfig(), 11)
		tr := NewTracker(kind)
		tr.Step(ex.Extract(frames[0], scene.WalkSpeed))
		tr.SetMasks([]TrackedMask{{
			Label: int(scene.Car), Mask: frames[0].Objects[0].Visible.Clone(),
		}})
		for _, f := range frames[1:] {
			tr.Step(ex.Extract(f, scene.WalkSpeed))
		}
		last := frames[len(frames)-1]
		return mask.IoU(tr.Masks()[0].Mask, last.Objects[0].Visible)
	}
	kcf := run(TrackKCF)
	mv := run(TrackMotionVector)
	if kcf <= mv {
		t.Errorf("KCF IoU %.3f should beat MV %.3f under scale change", kcf, mv)
	}
}

func TestTrackerNoFeaturesKeepsMask(t *testing.T) {
	tr := NewTracker(TrackMotionVector)
	m := mask.New(64, 64)
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			m.Set(x, y)
		}
	}
	tr.SetMasks([]TrackedMask{{Label: 1, Mask: m}})
	tr.Step(nil) // first step: no previous features
	tr.Step(nil) // still nothing to match
	if got := tr.Masks()[0].Mask.Area(); got != m.Area() {
		t.Errorf("mask changed without matches: %d", got)
	}
}

func TestMobileOnlyStrategy(t *testing.T) {
	_, cam, frames, ex := testWorldAndFrames(3)
	s := NewMobileOnly(cam, device.IPhone11, 1)
	if s.Name() == "" {
		t.Error("empty name")
	}
	out := s.ProcessFrame(frames[0], ex.Extract(frames[0], 1), 0)
	// Local inference on a phone takes many frame intervals.
	if out.ComputeMs < 500 {
		t.Errorf("mobile inference = %.0f ms, implausibly fast", out.ComputeMs)
	}
	if len(out.Offloads) != 0 {
		t.Error("mobile-only must not offload")
	}
	if len(out.Masks) == 0 {
		t.Error("no masks from local inference")
	}
	// HandleEdgeResult is a no-op.
	s.HandleEdgeResult(pipeline.EdgeResult{}, frames[0], 0)
}

func TestEdgeStrategyKeyframeCadence(t *testing.T) {
	_, cam, frames, ex := testWorldAndFrames(30)
	s := NewEAAR(cam, device.IPhone11)
	offloads := 0
	for _, f := range frames {
		out := s.ProcessFrame(f, ex.Extract(f, 1), float64(f.Index)*33.3)
		offloads += len(out.Offloads)
	}
	// Every 10 frames over 30 frames: 3 offloads.
	if offloads != 3 {
		t.Errorf("offloads = %d, want 3", offloads)
	}
}

func TestEdgeStrategyResultRefreshesTracker(t *testing.T) {
	_, cam, frames, ex := testWorldAndFrames(5)
	s := NewEdgeDuet(cam, device.IPhone11)
	s.ProcessFrame(frames[0], ex.Extract(frames[0], 1), 0)
	if len(s.Tracker().Masks()) != 0 {
		t.Fatal("tracker should start empty")
	}
	s.HandleEdgeResult(resultFor(frames[0]), frames[0], 40)
	if len(s.Tracker().Masks()) != len(frames[0].Objects) {
		t.Errorf("tracker has %d masks", len(s.Tracker().Masks()))
	}
	out := s.ProcessFrame(frames[1], ex.Extract(frames[1], 1), 33.3)
	if len(out.Masks) != len(frames[0].Objects) {
		t.Errorf("displayed %d masks", len(out.Masks))
	}
}

func TestBestEffortOffloadsEveryFrame(t *testing.T) {
	_, cam, frames, ex := testWorldAndFrames(10)
	s := NewBestEffort(cam, device.IPhone11)
	offloads := 0
	for _, f := range frames {
		out := s.ProcessFrame(f, ex.Extract(f, 1), float64(f.Index)*33.3)
		offloads += len(out.Offloads)
	}
	if offloads != 10 {
		t.Errorf("offloads = %d, want 10", offloads)
	}
	if s.PreferredQueueDepth() <= 1 {
		t.Error("best-effort should imply a deep dumb queue")
	}
}

func TestEncodingPolicyBytes(t *testing.T) {
	_, cam, frames, ex := testWorldAndFrames(2)
	// Seed each strategy's tracker with masks so encoders see objects.
	strategies := map[string]*EdgeStrategy{
		"best-effort": NewBestEffort(cam, device.IPhone11),
		"eaar":        NewEAAR(cam, device.IPhone11),
		"edgeduet":    NewEdgeDuet(cam, device.IPhone11),
	}
	bytes := map[string]int{}
	for name, s := range strategies {
		s.ProcessFrame(frames[0], ex.Extract(frames[0], 1), 0)
		s.HandleEdgeResult(resultFor(frames[0]), frames[0], 10)
		ef, err := s.encode(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bytes[name] = ef.Bytes
	}
	// Best-effort (uniform high) must be the most expensive; EdgeDuet's
	// low-base tile policy the cheapest.
	if !(bytes["best-effort"] > bytes["eaar"] && bytes["eaar"] > bytes["edgeduet"]) {
		t.Errorf("byte ordering violated: %v", bytes)
	}
}

func TestVariantGuidance(t *testing.T) {
	_, cam, frames, ex := testWorldAndFrames(2)
	s := NewVariant(cam, device.IPhone11, VariantConfig{
		Name: "guided", Encode: EncodeUniformHigh, KeyframeInterval: 1, UseGuidance: true,
	})
	// Without tracker masks, no guidance plan attaches.
	out := s.ProcessFrame(frames[0], ex.Extract(frames[0], 1), 0)
	if len(out.Offloads) != 1 || out.Offloads[0].Guidance != nil {
		t.Fatal("guidance should be absent without cached masks")
	}
	s.HandleEdgeResult(resultFor(frames[0]), frames[0], 10)
	out = s.ProcessFrame(frames[1], ex.Extract(frames[1], 1), 33.3)
	if len(out.Offloads) != 1 || out.Offloads[0].Guidance == nil {
		t.Fatal("guidance missing after tracker masks arrived")
	}
}

func TestVariantDefaults(t *testing.T) {
	s := NewVariant(geom.StandardCamera(64, 64), device.IPhone11, VariantConfig{Name: "d"})
	if s.keyframeInterval != 10 || s.tracker.Kind != TrackMotionVector {
		t.Error("defaults not applied")
	}
}

func TestMedianHelper(t *testing.T) {
	tr := NewTracker(TrackMotionVector)
	in := []float64{3, 1, 2}
	if got := tr.median(in); got != 2 {
		t.Errorf("median = %v", got)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("median mutated its input: %v", in)
	}
	if got := tr.median([]float64{5}); got != 5 {
		t.Errorf("median = %v", got)
	}
}

func TestSpreadRatio(t *testing.T) {
	p0 := []struct{ X, Y float64 }{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	p1 := []struct{ X, Y float64 }{{0, 0}, {4, 0}, {0, 4}, {4, 4}}
	if got := spreadRatio(p0, p1); got < 1.9 || got > 2.1 {
		t.Errorf("spread ratio = %v, want ~2", got)
	}
	// Degenerate: all points identical.
	same := []struct{ X, Y float64 }{{1, 1}, {1, 1}}
	if got := spreadRatio(same, p1); got != 1 {
		t.Errorf("degenerate ratio = %v, want 1", got)
	}
}
