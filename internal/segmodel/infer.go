package segmodel

import (
	"math"
	"math/rand"
	"sort"

	"edgeis/internal/mask"
)

// ObjectTruth is the ground truth the simulator perturbs into model output.
// Evaluation code supplies it from the synthetic scene; the "model" never
// sees anything a real network could not infer from the image (its output
// is a noisy function of what is visible).
type ObjectTruth struct {
	ObjectID int
	Label    int
	Visible  *mask.Bitmask
	Box      mask.Box
}

// Input is one frame presented to a model.
type Input struct {
	Width, Height int
	Objects       []ObjectTruth
	// Quality maps a pixel to the local encode quality in (0,1]; nil means
	// lossless. Tile compression (CFRS) lowers it, degrading both mask
	// fidelity and detection probability.
	Quality func(x, y int) float64
	// Seed makes the stochastic parts reproducible per frame.
	Seed int64
}

// Proposal is a candidate RoI emitted by the first stage.
type Proposal struct {
	Box mask.Box
	// Score is the class/objectness confidence.
	Score float64
	// Label is the predicted class.
	Label int
	// ObjectIdx indexes Input.Objects, or -1 for a background false
	// positive.
	ObjectIdx int
	// AreaID is the instructed-area index assigned by dynamic anchor
	// placement, or -1 when the proposal came from an uninstructed region.
	AreaID int
}

// Guidance is what contour-instructed acceleration (package accel) injects
// into the two-stage pipeline. A nil Guidance runs the vanilla model.
type Guidance interface {
	// AnchorBudget returns how many anchors the RPN evaluates for this
	// image, instead of the full grid.
	AnchorBudget(width, height int) int
	// Classify assigns a proposal's area: the index of the instructed
	// area containing the box center and the area's expected label
	// (0 when the area has no prior), or (-1, 0) when uncovered.
	Classify(b mask.Box) (areaID int, label int)
	// SelectRoIs filters the proposal stream in place of the default NMS
	// (RoI pruning + Fast NMS in edgeIS).
	SelectRoIs(props []Proposal) []Proposal
	// CoversObjects reports whether proposals may be generated for an
	// object box at all; uninstructed objects are only found via
	// new-area boxes.
	CoversObjects(b mask.Box) bool
}

// Detection is one final instance detection.
type Detection struct {
	ObjectID int
	Label    int
	Score    float64
	Box      mask.Box
	// Mask is nil for box-only models.
	Mask *mask.Bitmask
	// TrueIoU is the achieved IoU against the ground-truth visible mask
	// (boxes for box-only models) — recorded for evaluation convenience.
	TrueIoU float64
}

// Result is a full inference output with the op counts and latency split the
// experiments report.
type Result struct {
	Detections []Detection

	AnchorsEvaluated int
	FullGridAnchors  int
	RoIsProposed     int
	RoIsProcessed    int

	// Latency split in simulated milliseconds on the reference device.
	// On warped (non-keyframe) runs BackboneMs holds the partial-backbone
	// warp cost instead of Profile.BackboneMs.
	BackboneMs  float64
	RPNMs       float64
	SelectionMs float64
	HeadMs      float64

	// Warped marks a non-keyframe run served from cached backbone
	// features; CacheAge and ChangedTiles record the keyframe decision it
	// was served under.
	Warped       bool
	CacheAge     int
	ChangedTiles int
}

// TotalMs returns the end-to-end inference latency.
func (r *Result) TotalMs() float64 {
	return r.BackboneMs + r.RPNMs + r.SelectionMs + r.HeadMs
}

// Model is a simulated network.
type Model struct {
	Profile Profile
	// pool recycles the scratch masks of the BoundaryNoise error model so
	// repeated inference allocates only the emitted masks.
	pool *mask.Pool
}

// New builds a model with the default profile for the kind.
func New(kind Kind) *Model {
	return &Model{Profile: DefaultProfile(kind), pool: mask.NewPool()}
}

// Clone returns a model with the same profile but its own scratch pool.
// Run mutates the pool, so concurrent inference workers (the edge
// scheduler's accelerators) must each own a clone rather than share one
// model; outputs depend only on the input and profile, so clones are
// interchangeable.
func (m *Model) Clone() *Model {
	return &Model{Profile: m.Profile, pool: mask.NewPool()}
}

// Run performs simulated inference. Guidance applies only to two-stage
// models (Mask R-CNN); one-stage models ignore it, matching the paper's
// observation that end-to-end models are "hard to decompose, leaving little
// room for improvement".
func (m *Model) Run(in Input, g Guidance) *Result {
	rng := newRunRand(in.Seed)
	if m.Profile.RoIMs > 0 {
		return m.runTwoStage(in, g, rng, nil)
	}
	return m.runOneStage(in, rng, nil)
}

// newRunRand builds the per-frame RNG. Both Run and RunWarped seed it
// identically, so the two paths draw the same random stream and differ only
// in cost accounting and the IoU scale.
func newRunRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// runTwoStage simulates the RPN + RoI-head pipeline. A non-nil warpSpec
// switches the backbone charge to the skip-compute cost and applies its IoU
// scale to emitted detections; it must not change any RNG draw.
func (m *Model) runTwoStage(in Input, g Guidance, rng *rand.Rand, w *warpSpec) *Result {
	p := m.Profile
	res := &Result{FullGridAnchors: FullGridAnchors(in.Width, in.Height)}

	// --- Stage 1: anchors and proposals.
	if g != nil {
		res.AnchorsEvaluated = g.AnchorBudget(in.Width, in.Height)
		if res.AnchorsEvaluated > res.FullGridAnchors {
			res.AnchorsEvaluated = res.FullGridAnchors
		}
	} else {
		res.AnchorsEvaluated = res.FullGridAnchors
	}

	props := m.generateProposals(in, g, res.AnchorsEvaluated, rng)
	res.RoIsProposed = len(props)

	// --- Selection: guidance (RoI pruning + Fast NMS) or plain NMS.
	var kept []Proposal
	if g != nil {
		kept = g.SelectRoIs(props)
	} else {
		kept = DefaultNMS(props, 0.7, p.MaxRoIs)
	}
	if len(kept) > p.MaxRoIs {
		kept = kept[:p.MaxRoIs]
	}
	res.RoIsProcessed = len(kept)

	// --- Stage 2: one detection per distinct object among the kept RoIs.
	res.Detections = m.emitDetections(in, kept, rng, warpIoUScale(w))

	// --- Latency from op counts.
	anchorFrac := float64(res.AnchorsEvaluated) / float64(res.FullGridAnchors)
	res.BackboneMs = p.BackboneMs
	res.RPNMs = p.RPNFixedMs + p.RPNAnchorMs*anchorFrac
	res.SelectionMs = 0.002 * float64(res.RoIsProposed)
	res.HeadMs = p.RoIMs * float64(res.RoIsProcessed)
	applyWarp(res, w)
	return res
}

// warpIoUScale returns the detection-quality scale of a warp spec (1 on the
// vanilla path).
func warpIoUScale(w *warpSpec) float64 {
	if w == nil {
		return 1
	}
	return w.iouScale
}

// applyWarp overwrites the backbone charge with the skip-compute cost and
// records the warp provenance on the result.
func applyWarp(res *Result, w *warpSpec) {
	if w == nil {
		return
	}
	res.BackboneMs = w.backboneMs
	res.Warped = true
	res.CacheAge = w.age
	res.ChangedTiles = w.changed
}

// runOneStage simulates YOLACT/YOLOv3-style dense prediction.
func (m *Model) runOneStage(in Input, rng *rand.Rand, w *warpSpec) *Result {
	p := m.Profile
	res := &Result{
		FullGridAnchors:  FullGridAnchors(in.Width, in.Height),
		AnchorsEvaluated: FullGridAnchors(in.Width, in.Height),
	}
	props := m.generateProposals(in, nil, res.AnchorsEvaluated, rng)
	res.RoIsProposed = len(props)
	kept := DefaultNMS(props, 0.7, 100)
	res.RoIsProcessed = len(kept)
	res.Detections = m.emitDetections(in, kept, rng, warpIoUScale(w))
	res.BackboneMs = p.BackboneMs
	res.HeadMs = p.HeadFixedMs
	res.SelectionMs = 0.002 * float64(res.RoIsProposed)
	applyWarp(res, w)
	return res
}

// objectQuality samples the encode quality over an object's box.
func objectQuality(in Input, b mask.Box) float64 {
	if in.Quality == nil {
		return 1
	}
	c := b.Center()
	q := in.Quality(int(c.X), int(c.Y))
	q += in.Quality(b.MinX, b.MinY)
	q += in.Quality(b.MaxX-1, b.MaxY-1)
	q /= 3
	if q <= 0 {
		return 0.05
	}
	if q > 1 {
		return 1
	}
	return q
}

// generateProposals emits jittered object proposals plus background false
// positives proportional to the anchors evaluated.
func (m *Model) generateProposals(in Input, g Guidance, anchors int, rng *rand.Rand) []Proposal {
	props := make([]Proposal, 0, 16*len(in.Objects)+8)
	for idx, obj := range in.Objects {
		if obj.Box.Empty() {
			continue
		}
		if g != nil && !g.CoversObjects(obj.Box) {
			// The instructed RPN never looked here; the object can only
			// be recovered by a later new-area offload.
			continue
		}
		q := objectQuality(in, obj.Box)
		n := 6 + obj.Box.Area()/1200
		if n > 18 {
			n = 18
		}
		// Anchor shapes at several scales survive NMS as distinct
		// candidates, the way a real multi-scale RPN's output does.
		scales := [5]float64{1.0, 0.7, 1.3, 0.85, 1.15}
		for i := 0; i < n; i++ {
			jb := jitterBox(scaleBox(obj.Box, scales[i%len(scales)], in.Width, in.Height),
				0.10, in.Width, in.Height, rng)
			score := clamp01(0.72 + 0.18*q + rng.NormFloat64()*0.08 - 0.05*float64(i)/float64(n))
			label := obj.Label
			if rng.Float64() < 0.03*(1.1-q) {
				label = 1 + rng.Intn(12) // class confusion under low quality
			}
			areaID := -1
			areaLabel := 0
			if g != nil {
				areaID, areaLabel = g.Classify(jb)
				_ = areaLabel
			}
			props = append(props, Proposal{
				Box: jb, Score: score, Label: label, ObjectIdx: idx, AreaID: areaID,
			})
		}
	}
	// Background false positives scale with the anchor surface examined.
	// An instructed anchor set concentrates on object-rich texture where
	// objectness fires constantly, so its per-anchor FP rate is higher
	// (fpFocus); a real RPN's dense low-score output is what fills the
	// second stage's RoI budget on vanilla runs.
	const fpFocus = 3.2
	// FP volume follows the FRACTION of the grid examined (the cost model
	// is resolution-normalized), against a budget calibrated so a vanilla
	// run fills the second stage's RoI budget.
	const fpBudget = 130.0
	frac := float64(anchors) / float64(FullGridAnchors(in.Width, in.Height))
	focus := 1.0
	if g != nil {
		focus = fpFocus
	}
	nFP := int(frac * fpBudget * focus)
	attempts := 0
	for emitted := 0; emitted < nFP && attempts < 12*nFP; attempts++ {
		w := 20 + rng.Intn(60)
		h := 20 + rng.Intn(60)
		x := rng.Intn(maxInt(1, in.Width-w))
		y := rng.Intn(maxInt(1, in.Height-h))
		b := mask.Box{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		areaID := -1
		if g != nil {
			areaID, _ = g.Classify(b)
			if areaID == -1 {
				// Anchors exist only inside instructed areas; rejection
				// sampling keeps FP boxes where the RPN actually looked.
				continue
			}
		}
		props = append(props, Proposal{
			Box: b, Score: 0.3 + rng.Float64()*0.35,
			Label: 1 + rng.Intn(12), ObjectIdx: -1, AreaID: areaID,
		})
		emitted++
	}
	return props
}

// emitDetections converts surviving RoIs into at most one detection per
// ground-truth object, applying the miss and mask-quality models. iouScale
// degrades detection quality on warped (non-keyframe) runs; 1 is the
// vanilla path and must be a perfect identity — same RNG draws, same
// output.
func (m *Model) emitDetections(in Input, kept []Proposal, rng *rand.Rand, iouScale float64) []Detection {
	p := m.Profile
	best := make(map[int]Proposal, len(in.Objects))
	for _, pr := range kept {
		if pr.ObjectIdx < 0 {
			continue
		}
		if b, ok := best[pr.ObjectIdx]; !ok || pr.Score > b.Score {
			best[pr.ObjectIdx] = pr
		}
	}
	out := make([]Detection, 0, len(best))
	for idx, obj := range in.Objects {
		pr, ok := best[idx]
		if !ok {
			continue // no surviving RoI: missed
		}
		q := objectQuality(in, obj.Box)
		area := float64(obj.Visible.Area())
		pMiss := p.BaseMissRate + math.Exp(-area*q/p.MissScale)
		if rng.Float64() < pMiss {
			continue
		}
		targetIoU := p.BaseMaskIoU * (0.72 + 0.28*q) * iouScale
		det := Detection{
			ObjectID: obj.ObjectID,
			Label:    pr.Label,
			Score:    pr.Score,
			Box:      pr.Box,
		}
		if p.BoxOnly {
			// Box-only models regress the final box directly; their output
			// quality is BoxJitter, not the proposal jitter. The warp
			// penalty widens the jitter instead of lowering a mask target
			// (2 - iouScale is 1 at scale 1, growing as quality drops).
			det.Box = jitterBox(obj.Box, p.BoxJitter*(2-iouScale), in.Width, in.Height, rng)
			det.TrueIoU = det.Box.IoU(obj.Box)
		} else {
			det.Mask = obj.Visible.BoundaryNoisePooled(targetIoU, rng.Float64, m.pool)
			det.Box = det.Mask.BoundingBox()
			det.TrueIoU = mask.IoU(det.Mask, obj.Visible)
		}
		out = append(out, det)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ObjectID < out[j].ObjectID })
	return out
}

// DefaultNMS is the vanilla greedy non-maximum suppression the unmodified
// model uses: sort by score, drop boxes overlapping a kept box above the
// IoU threshold, cap at maxKeep.
func DefaultNMS(props []Proposal, iouThresh float64, maxKeep int) []Proposal {
	sorted := make([]Proposal, len(props))
	copy(sorted, props)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	kept := make([]Proposal, 0, minInt(maxKeep, len(sorted)))
	for _, p := range sorted {
		suppressed := false
		for _, k := range kept {
			if p.Box.IoU(k.Box) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, p)
			if len(kept) >= maxKeep {
				break
			}
		}
	}
	return kept
}

// scaleBox scales a box about its center, clipped to the image.
func scaleBox(b mask.Box, s float64, w, h int) mask.Box {
	if s == 1 {
		return b
	}
	c := b.Center()
	hw := float64(b.Width()) * s / 2
	hh := float64(b.Height()) * s / 2
	out := mask.Box{
		MinX: int(c.X - hw), MinY: int(c.Y - hh),
		MaxX: int(c.X + hw), MaxY: int(c.Y + hh),
	}
	if out.MinX < 0 {
		out.MinX = 0
	}
	if out.MinY < 0 {
		out.MinY = 0
	}
	if out.MaxX > w {
		out.MaxX = w
	}
	if out.MaxY > h {
		out.MaxY = h
	}
	if out.Empty() {
		return b
	}
	return out
}

// jitterBox perturbs a box's corners by up to frac of its dimensions.
func jitterBox(b mask.Box, frac float64, w, h int, rng *rand.Rand) mask.Box {
	dx := float64(b.Width()) * frac
	dy := float64(b.Height()) * frac
	out := mask.Box{
		MinX: b.MinX + int(rng.NormFloat64()*dx/2),
		MinY: b.MinY + int(rng.NormFloat64()*dy/2),
		MaxX: b.MaxX + int(rng.NormFloat64()*dx/2),
		MaxY: b.MaxY + int(rng.NormFloat64()*dy/2),
	}
	if out.MinX < 0 {
		out.MinX = 0
	}
	if out.MinY < 0 {
		out.MinY = 0
	}
	if out.MaxX > w {
		out.MaxX = w
	}
	if out.MaxY > h {
		out.MaxY = h
	}
	if out.Empty() {
		return b
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
