package segmodel

import "testing"

func BenchmarkMaskRCNNVanilla(b *testing.B) {
	model := New(MaskRCNN)
	in := testInput(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.Run(in, nil)
	}
}

func BenchmarkYOLACT(b *testing.B) {
	model := New(YOLACT)
	in := testInput(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.Run(in, nil)
	}
}
