package segmodel

import "testing"

func BenchmarkMaskRCNNVanilla(b *testing.B) {
	model := New(MaskRCNN)
	in := testInput(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.Run(in, nil)
	}
}

func BenchmarkYOLACT(b *testing.B) {
	model := New(YOLACT)
	in := testInput(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.Run(in, nil)
	}
}

// BenchmarkMaskRCNNGuided measures the guided two-stage path (CIIA anchor
// budget + RoI selection through a Guidance implementation).
func BenchmarkMaskRCNNGuided(b *testing.B) {
	model := New(MaskRCNN)
	in := testInput(1)
	g := guidanceFor(in, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.Run(in, g)
	}
}

// BenchmarkMaskRCNNRunBatch measures a 4-frame amortized batch launch; the
// per-frame figure divides by 4 for comparison with the solo benchmarks.
func BenchmarkMaskRCNNRunBatch(b *testing.B) {
	model := New(MaskRCNN)
	ins := []Input{testInput(1), testInput(2), testInput(3), testInput(4)}
	gs := make([]Guidance, len(ins))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range ins {
			ins[j].Seed = int64(i*len(ins) + j)
		}
		model.RunBatch(ins, gs)
	}
}

// BenchmarkMaskRCNNWarped measures the cached/non-keyframe skip-compute
// path (partial backbone over warped features).
func BenchmarkMaskRCNNWarped(b *testing.B) {
	model := New(MaskRCNN)
	in := testInput(1)
	d := KeyframeDecision{Age: 1, ChangedTiles: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.RunWarped(in, nil, d)
	}
}

// BenchmarkYOLACTWarped is the one-stage skip-compute counterpart.
func BenchmarkYOLACTWarped(b *testing.B) {
	model := New(YOLACT)
	in := testInput(1)
	d := KeyframeDecision{Age: 1, ChangedTiles: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Seed = int64(i)
		model.RunWarped(in, nil, d)
	}
}
