// Package segmodel implements the simulated deep-learning backends of the
// reproduction: a two-stage Mask R-CNN-style instance segmenter, a
// YOLACT-style one-stage segmenter and a YOLOv3-style detector.
//
// The networks themselves are not reproduced — that is the documented
// substitution for the paper's PyTorch/TFLite models (see DESIGN.md). What
// is reproduced mechanistically is everything the paper's contribution
// touches:
//
//   - the anchor grid over FPN levels and WHICH anchors are evaluated
//     (dynamic anchor placement shrinks this set, Section IV-A);
//   - the proposal stream and WHICH RoIs reach the second stage
//     (RoI pruning shrinks this set, Section IV-B);
//   - an op-count latency model converting those counts into milliseconds,
//     calibrated against the paper's Fig. 2b / Fig. 14 numbers;
//   - an accuracy model emitting ground-truth masks distorted to each
//     model's characteristic quality, degraded by tile compression quality
//     and by detection misses.
//
// Latency is resolution-normalized: costs are expressed per whole frame and
// per fraction of the full anchor grid, so the simulated milliseconds match
// the paper's scale regardless of the synthetic frame resolution.
package segmodel

import (
	"fmt"
	"math"

	"edgeis/internal/mask"
)

// Kind selects a simulated model.
type Kind int

// Supported model kinds.
const (
	// MaskRCNN is the two-stage, RoI-based segmenter the paper builds
	// CIIA on (ResNet-101-FPN backbone in the paper).
	MaskRCNN Kind = iota + 1
	// YOLACT is the one-stage segmenter baseline of Fig. 2b: faster,
	// less accurate, and not decomposable for CIIA.
	YOLACT
	// YOLOv3 is the detector used to motivate the detection/segmentation
	// gap in Fig. 2b (boxes only, no masks).
	YOLOv3
)

// String names the model kind.
func (k Kind) String() string {
	switch k {
	case MaskRCNN:
		return "mask-rcnn"
	case YOLACT:
		return "yolact"
	case YOLOv3:
		return "yolov3"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Profile holds the latency and accuracy characteristics of a model kind on
// the reference edge device (Jetson TX2 in the paper). All times are
// simulated milliseconds.
type Profile struct {
	Kind Kind

	// BackboneMs is the fixed feature-extraction cost per frame.
	BackboneMs float64
	// RPNFixedMs is the resolution-independent RPN overhead (two-stage
	// models only).
	RPNFixedMs float64
	// RPNAnchorMs is the cost of evaluating the FULL anchor grid; actual
	// cost scales with the fraction of the grid evaluated.
	RPNAnchorMs float64
	// RoIMs is the second-stage (classification + box + mask head) cost
	// per RoI processed.
	RoIMs float64
	// HeadFixedMs is the one-stage prediction-head cost (one-stage models).
	HeadFixedMs float64
	// MaxRoIs is the post-selection RoI budget of the second stage.
	MaxRoIs int

	// BaseMaskIoU is the mask quality (IoU against ground truth) the model
	// achieves on a clean, well-resolved object.
	BaseMaskIoU float64
	// BoxOnly marks detector models that emit boxes instead of masks.
	BoxOnly bool
	// MissScale controls the small-object miss rate: the probability of
	// missing an object decays exponentially with (pixel area x quality)
	// over MissScale.
	MissScale float64
	// BaseMissRate is the floor miss probability for any object.
	BaseMissRate float64
	// BoxJitter is the relative corner noise of final detection boxes for
	// box-only models (their regression head quality).
	BoxJitter float64

	// Skip-compute (temporal-redundancy) cost model, see skip.go.
	//
	// WarpMs is the fixed cost of warping the cached keyframe pyramid onto
	// the current frame (YolactEdge's partial feature transform).
	WarpMs float64
	// TileRecomputeMs is the partial-backbone recompute cost per changed
	// 64 px tile, calibrated against the 640x480 reference grid (80 tiles:
	// a fully-changed frame costs at least the full backbone, so
	// WarpCostMs clamps at BackboneMs).
	TileRecomputeMs float64
	// WarpPenaltyPerFrame is the per-frame-of-cache-age IoU penalty on
	// warped-feature detections; WarpPenaltyMax bounds the total penalty
	// so accuracy degrades predictably between keyframes.
	WarpPenaltyPerFrame float64
	WarpPenaltyMax      float64
}

// DefaultProfile returns the calibrated profile for a model kind.
//
// Calibration targets (reference device, full frame):
//
//	Mask R-CNN: 36 + (40+50) + 100*2.74 = 400 ms, IoU ~0.92  (Fig. 2b)
//	YOLACT:     80 + 40 = 120 ms, IoU ~0.75                   (Fig. 2b)
//	YOLOv3:     22 + 8 = 30 ms, box IoU ~0.98                 (Fig. 2b)
//
// The Mask R-CNN split makes Fig. 14's ablation arithmetic come out: DAP
// removes ~92% of anchor cost (-46% RPN) and ~21% of RoIs; pruning removes
// a further ~43% of second-stage cost; together -48% end to end.
//
// Skip-compute calibration (see skip.go): WarpMs is ~1/6 of BackboneMs
// (YolactEdge reports the partial feature transform at a small fraction of
// backbone cost), and TileRecomputeMs is set so a fully-changed 640x480
// frame (80 tiles) meets or exceeds BackboneMs and therefore clamps — a
// warp never beats a recompute on a scene that changed everywhere. The IoU
// penalty is bounded at 4-8% of detection quality at maximum cache age.
func DefaultProfile(k Kind) Profile {
	switch k {
	case MaskRCNN:
		return Profile{
			Kind:         MaskRCNN,
			BackboneMs:   36,
			RPNFixedMs:   40,
			RPNAnchorMs:  50,
			RoIMs:        2.74,
			MaxRoIs:      100,
			BaseMaskIoU:  0.96,
			MissScale:    900,
			BaseMissRate: 0.01,

			WarpMs:              6,
			TileRecomputeMs:     0.45,
			WarpPenaltyPerFrame: 0.015,
			WarpPenaltyMax:      0.06,
		}
	case YOLACT:
		return Profile{
			Kind:         YOLACT,
			BackboneMs:   80,
			HeadFixedMs:  40,
			BaseMaskIoU:  0.80,
			MissScale:    1400,
			BaseMissRate: 0.04,

			WarpMs:              14,
			TileRecomputeMs:     1.0,
			WarpPenaltyPerFrame: 0.02,
			WarpPenaltyMax:      0.08,
		}
	case YOLOv3:
		return Profile{
			Kind:         YOLOv3,
			BackboneMs:   22,
			HeadFixedMs:  8,
			BaseMaskIoU:  0.985,
			BoxOnly:      true,
			MissScale:    700,
			BaseMissRate: 0.005,
			BoxJitter:    0.008,

			WarpMs:              4,
			TileRecomputeMs:     0.28,
			WarpPenaltyPerFrame: 0.01,
			WarpPenaltyMax:      0.04,
		}
	default:
		panic(fmt.Sprintf("segmodel: unknown kind %d", int(k)))
	}
}

// FPN pyramid levels of the two-stage model, by stride.
var fpnStrides = [5]int{4, 8, 16, 32, 64}

// anchorsPerCell is the number of anchor shapes evaluated per grid cell.
const anchorsPerCell = 3

// FullGridAnchors returns the anchor count of the complete FPN grid for an
// image size — the denominator of the anchor-fraction cost model.
func FullGridAnchors(width, height int) int {
	total := 0
	for _, s := range fpnStrides {
		total += (width / s) * (height / s) * anchorsPerCell
	}
	return total
}

// LevelForBox returns the FPN level index (0-based into fpnStrides) that
// would handle a box of the given pixel area, following the FPN assignment
// rule (level ∝ log2 of box scale).
func LevelForBox(area int) int {
	if area <= 0 {
		return 0
	}
	scale := math.Sqrt(float64(area))
	// Reference: a 224^2 box maps to level 2 (stride 16).
	lvl := 2 + int(math.Floor(math.Log2(scale/224)+0.5))
	if lvl < 0 {
		lvl = 0
	}
	if lvl > len(fpnStrides)-1 {
		lvl = len(fpnStrides) - 1
	}
	return lvl
}

// AnchorsInBox returns the number of anchors a box contributes at its FPN
// level (grid cells covered x anchors per cell).
func AnchorsInBox(b mask.Box) int {
	if b.Empty() {
		return 0
	}
	stride := fpnStrides[LevelForBox(b.Area())]
	cells := ((b.Width() + stride - 1) / stride) * ((b.Height() + stride - 1) / stride)
	if cells < 1 {
		cells = 1
	}
	return cells * anchorsPerCell
}
