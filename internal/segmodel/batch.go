package segmodel

// Batched inference cost model. Real accelerators amortize the fixed part
// of a kernel launch (weight fetch, scheduling, backbone setup) across the
// frames of a batch: running B compatible frames together costs far less
// than B solo launches (cf. YolactEdge's cross-frame compute sharing). The
// scheduler's batch former relies on this to turn cross-session gathering
// into throughput.

// BatchMarginalFrac is the fraction of a frame's solo latency that a batch
// launch pays for each frame beyond the slowest one. The slowest frame is
// charged in full (the launch cannot finish before its longest member); the
// rest ride the already-amortized launch at this marginal rate. At 0.5 a
// batch of 8 equal frames costs 4.5 solo-latencies instead of 8 — a 1.78x
// throughput gain.
const BatchMarginalFrac = 0.5

// BatchMs returns the amortized latency of serving the given solo
// latencies in one batch launch: the slowest frame in full plus the
// marginal fraction of every other. The result is order-independent, and a
// single-element batch costs exactly its solo latency.
//
// Negative solo latencies are clamped to zero before amortizing: a
// miscalibrated cost model (e.g. a negative non-keyframe warp cost) must
// never yield a negative launch time, and the clamp keeps the result
// monotone in batch size.
func BatchMs(soloMs []float64) float64 {
	if len(soloMs) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, ms := range soloMs {
		if ms < 0 {
			ms = 0
		}
		if ms > max {
			max = ms
		}
		sum += ms
	}
	return max + BatchMarginalFrac*(sum-max)
}

// RunBatch serves len(ins) frames in one amortized launch: each frame's
// output is exactly what Run would produce (outputs are a pure function of
// the frame's own input and seed, so batching never changes results), and
// launchMs is the amortized latency of the whole launch per BatchMs. gs[i]
// is the guidance of ins[i]; callers batch only frames of one guidance
// class, but RunBatch itself does not care.
func (m *Model) RunBatch(ins []Input, gs []Guidance) (outs []*Result, launchMs float64) {
	outs = make([]*Result, len(ins))
	solos := make([]float64, len(ins))
	for i, in := range ins {
		outs[i] = m.Run(in, gs[i])
		// Clamp defensively: a profile with negative cost fields must not
		// leak negative solo latencies into the amortization.
		if solos[i] = outs[i].TotalMs(); solos[i] < 0 {
			solos[i] = 0
		}
	}
	return outs, BatchMs(solos)
}
