package segmodel

import (
	"math"
	"testing"
)

func TestBatchMsAmortizes(t *testing.T) {
	if got := BatchMs(nil); got != 0 {
		t.Errorf("empty batch cost %v, want 0", got)
	}
	if got := BatchMs([]float64{42}); got != 42 {
		t.Errorf("solo batch cost %v, want 42", got)
	}
	// max + frac*(sum-max): 20 + 0.5*(10+5) = 27.5.
	if got, want := BatchMs([]float64{10, 20, 5}), 27.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("batch cost %v, want %v", got, want)
	}
	// Order-independent.
	if a, b := BatchMs([]float64{10, 20, 5}), BatchMs([]float64{5, 10, 20}); a != b {
		t.Errorf("batch cost depends on order: %v vs %v", a, b)
	}
	// Equal-latency batch of 8 at frac 0.5 costs 4.5 solos -> ~1.78x.
	eq := make([]float64, 8)
	for i := range eq {
		eq[i] = 30
	}
	if got, want := BatchMs(eq), 30*4.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("batch-8 cost %v, want %v", got, want)
	}
}

func TestRunBatchMatchesSoloRuns(t *testing.T) {
	m := New(MaskRCNN)
	ins := make([]Input, 4)
	gs := make([]Guidance, 4)
	for i := range ins {
		ins[i] = testInput(int64(100 + i))
	}
	outs, launchMs := m.RunBatch(ins, gs)
	if len(outs) != len(ins) {
		t.Fatalf("got %d outputs, want %d", len(outs), len(ins))
	}
	solos := make([]float64, len(ins))
	for i, in := range ins {
		want := New(MaskRCNN).Run(in, gs[i])
		if outs[i].TotalMs() != want.TotalMs() || len(outs[i].Detections) != len(want.Detections) {
			t.Errorf("frame %d: batched output differs from solo run", i)
		}
		solos[i] = want.TotalMs()
	}
	if want := BatchMs(solos); math.Abs(launchMs-want) > 1e-9 {
		t.Errorf("launch latency %v, want BatchMs %v", launchMs, want)
	}
	if launchMs >= sum(solos) {
		t.Errorf("launch latency %v not amortized below serial %v", launchMs, sum(solos))
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
