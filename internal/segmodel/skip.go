package segmodel

// Temporal-redundancy skip-compute (YolactEdge-style, see PAPERS.md).
//
// Consecutive frames of a video are largely redundant: the backbone features
// of frame t can be cheaply warped into frame t+1 instead of recomputed.
// This file models that lever in the simulated cost model: a per-session
// FeatureCache remembers the last keyframe's backbone pyramid, a
// KeyframePolicy decides per frame whether the cache is still usable, and
// Model.RunWarped charges a calibrated partial-backbone cost
// (Profile.WarpMs + Profile.TileRecomputeMs per changed tile, clamped at
// BackboneMs) instead of the full Profile.BackboneMs on non-keyframes.
//
// Warped features are not free: detections computed on them carry a bounded
// IoU penalty that grows with cache age (Profile.WarpPenaltyPerFrame, capped
// at Profile.WarpPenaltyMax), so the accuracy/latency trade-off stays
// measurable against the oracle.
//
// Ownership: the cache belongs to whoever owns the session (edge.Session,
// pipeline backends, the loadgen simulator). segmodel only defines the
// decision function and the cost model; it holds no cross-frame state of
// its own, so Model stays stateless and clone-safe.

import (
	"math"

	"edgeis/internal/mask"
)

// warpTile is the pixel granularity of partial backbone recompute: the
// frame is divided into warpTile x warpTile tiles and only tiles touched by
// moved content pay Profile.TileRecomputeMs. 64 px matches the coarsest FPN
// stride, the natural unit of backbone feature reuse.
const warpTile = 64

// AreaProvider is implemented by guidance values that can expose the pixel
// boxes of their instructed areas (accel.Plan does). The keyframe decision
// measures guidance churn — how far the CIIA-transferred contours moved
// since the cached keyframe — through this interface; guidance without it
// contributes no churn signal.
type AreaProvider interface {
	AreaBoxes() []mask.Box
}

// GuidanceAreas extracts the instructed-area boxes from a guidance value,
// or nil when the guidance is nil or does not expose areas.
func GuidanceAreas(g Guidance) []mask.Box {
	if g == nil {
		return nil
	}
	if ap, ok := g.(AreaProvider); ok {
		return ap.AreaBoxes()
	}
	return nil
}

// KeyframeReason explains why a frame was (or was not) a keyframe.
type KeyframeReason string

// Keyframe decision reasons.
const (
	// KeyDisabled: skip-compute is off (Interval <= 1) or no cache exists;
	// every frame pays the full backbone.
	KeyDisabled KeyframeReason = "disabled"
	// KeyCold: the cache holds no valid pyramid (first frame, or it was
	// invalidated).
	KeyCold KeyframeReason = "cold"
	// KeyResolution: the frame resolution changed; cached features cannot
	// be warped across resolutions.
	KeyResolution KeyframeReason = "resolution"
	// KeyContinuity: the cached pyramid was built under guidance and this
	// frame arrived without any — the CIIA contour chain broke, so the
	// churn signal is gone and the cache cannot be trusted.
	KeyContinuity KeyframeReason = "continuity"
	// KeyInterval: the forced-keyframe interval elapsed.
	KeyInterval KeyframeReason = "interval"
	// KeyChurn: too many transferred contours moved beyond the motion
	// threshold since the cached keyframe.
	KeyChurn KeyframeReason = "churn"
	// KeyNone marks a non-keyframe (the skip path runs).
	KeyNone KeyframeReason = ""
)

// KeyframePolicy decides which frames recompute the full backbone.
// The zero value (Interval 0) disables skip-compute entirely: every frame
// is a keyframe and behaviour is byte-identical to a build without the
// feature cache.
type KeyframePolicy struct {
	// Interval forces a keyframe every Interval frames. Interval <= 1
	// disables skip-compute (every frame is a keyframe).
	Interval int
	// MotionThreshold is the relative center displacement (fraction of the
	// contour's scale, sqrt of its box area) beyond which a transferred
	// contour counts as moved. 0 means the default 0.25.
	MotionThreshold float64
	// ChurnLimit is the moved fraction of transferred contours above which
	// a keyframe is forced regardless of age. 0 means the default 0.5.
	ChurnLimit float64
}

// Enabled reports whether the policy ever produces non-keyframes.
func (p KeyframePolicy) Enabled() bool { return p.Interval > 1 }

// withDefaults fills the zero thresholds.
func (p KeyframePolicy) withDefaults() KeyframePolicy {
	if p.MotionThreshold <= 0 {
		p.MotionThreshold = 0.25
	}
	if p.ChurnLimit <= 0 {
		p.ChurnLimit = 0.5
	}
	return p
}

// KeyframeDecision is the outcome of KeyframePolicy.Decide for one frame.
// It rides the inference job so the accelerator worker that serves the
// frame charges the matching cost shape.
type KeyframeDecision struct {
	// Keyframe is true when the frame must recompute the full backbone.
	Keyframe bool
	// Reason explains the decision (KeyNone on non-keyframes).
	Reason KeyframeReason
	// Age is the number of frames since the cached keyframe (0 on
	// keyframes, >= 1 on non-keyframes).
	Age int
	// ChangedTiles is the number of warpTile-sized tiles touched by moved
	// content; each pays Profile.TileRecomputeMs on the skip path.
	ChangedTiles int
	// TotalTiles is the tile count of the whole frame, for rate reporting.
	TotalTiles int
	// Churn is the moved fraction of transferred contours.
	Churn float64
}

// FeatureCache models the cached backbone pyramid of one session's last
// keyframe. Only the metadata needed by the cost model is held (dimensions,
// age, the keyframe's instructed-area boxes); the simulated features
// themselves have no representation.
//
// A FeatureCache is NOT safe for concurrent use; the owning session must
// serialize access (edge.Session holds it under its own mutex).
type FeatureCache struct {
	valid  bool
	width  int
	height int
	age    int
	guided bool
	areas  []mask.Box
}

// NewFeatureCache returns an empty (cold) cache.
func NewFeatureCache() *FeatureCache { return &FeatureCache{} }

// Valid reports whether the cache holds a usable keyframe pyramid.
func (c *FeatureCache) Valid() bool { return c != nil && c.valid }

// Age returns the frames elapsed since the cached keyframe.
func (c *FeatureCache) Age() int {
	if c == nil {
		return 0
	}
	return c.age
}

// Invalidate drops the cached pyramid: the next frame is a cold keyframe.
// Owners call this when the cache can no longer be trusted — the session's
// guidance continuity broke, or a keyframe that would have refreshed it was
// shed before reaching an accelerator.
func (c *FeatureCache) Invalidate() {
	if c == nil {
		return
	}
	c.valid = false
	c.age = 0
	c.areas = c.areas[:0]
}

// refresh records a new keyframe.
func (c *FeatureCache) refresh(in Input, g Guidance, boxes []mask.Box) {
	c.valid = true
	c.width, c.height = in.Width, in.Height
	c.age = 0
	c.guided = g != nil
	c.areas = append(c.areas[:0], boxes...)
}

// Decide classifies one frame as keyframe or non-keyframe and updates the
// cache accordingly: keyframes refresh it, non-keyframes age it. The
// decision must be made in frame arrival order — it is the only place
// cross-frame state advances.
//
// A nil cache or a disabled policy always yields a keyframe (reason
// KeyDisabled) and leaves the cache untouched, reproducing cache-free
// behaviour exactly.
func (p KeyframePolicy) Decide(c *FeatureCache, in Input, g Guidance) KeyframeDecision {
	if !p.Enabled() || c == nil {
		return KeyframeDecision{Keyframe: true, Reason: KeyDisabled}
	}
	p = p.withDefaults()
	boxes := GuidanceAreas(g)
	keyframe := func(why KeyframeReason) KeyframeDecision {
		c.refresh(in, g, boxes)
		return KeyframeDecision{Keyframe: true, Reason: why}
	}
	if !c.valid {
		return keyframe(KeyCold)
	}
	if c.width != in.Width || c.height != in.Height {
		return keyframe(KeyResolution)
	}
	if c.guided && g == nil {
		return keyframe(KeyContinuity)
	}
	age := c.age + 1
	if age >= p.Interval {
		return keyframe(KeyInterval)
	}
	churn, moved, orphans := matchContours(c.areas, boxes, p.MotionThreshold)
	if churn > p.ChurnLimit {
		return keyframe(KeyChurn)
	}
	c.age = age
	changed, total := changedTiles(in.Width, in.Height, moved, orphans)
	return KeyframeDecision{
		Age:          age,
		Churn:        churn,
		ChangedTiles: changed,
		TotalTiles:   total,
	}
}

// matchContours greedily matches each current contour box to the nearest
// cached keyframe box by center distance. A current box counts as moved
// when it has no cached counterpart (a new area) or its center displaced
// beyond motionThresh x its scale. Returned are the moved fraction of
// current boxes, the moved boxes themselves, and the cached boxes left
// unmatched (content that left the frame — their tiles changed too).
func matchContours(prev, cur []mask.Box, motionThresh float64) (churn float64, moved, orphans []mask.Box) {
	taken := make([]bool, len(prev))
	nMoved := 0
	for _, cb := range cur {
		cc := cb.Center()
		bestIdx, bestDist := -1, math.Inf(1)
		for i, pb := range prev {
			if taken[i] {
				continue
			}
			pc := pb.Center()
			d := math.Hypot(cc.X-pc.X, cc.Y-pc.Y)
			if d < bestDist {
				bestIdx, bestDist = i, d
			}
		}
		if bestIdx < 0 {
			nMoved++
			moved = append(moved, cb)
			continue
		}
		taken[bestIdx] = true
		scale := math.Sqrt(float64(prev[bestIdx].Area()))
		if bestDist > motionThresh*scale {
			nMoved++
			moved = append(moved, cb, prev[bestIdx])
		}
	}
	for i, pb := range prev {
		if !taken[i] {
			orphans = append(orphans, pb)
		}
	}
	if len(cur) > 0 {
		churn = float64(nMoved) / float64(len(cur))
	}
	return churn, moved, orphans
}

// changedTiles counts the warpTile-grid tiles covered by any moved or
// orphaned box — the tiles whose backbone features must be recomputed
// rather than warped.
func changedTiles(width, height int, moved, orphans []mask.Box) (changed, total int) {
	tx := (width + warpTile - 1) / warpTile
	ty := (height + warpTile - 1) / warpTile
	if tx < 1 {
		tx = 1
	}
	if ty < 1 {
		ty = 1
	}
	total = tx * ty
	if len(moved) == 0 && len(orphans) == 0 {
		return 0, total
	}
	grid := make([]bool, total)
	mark := func(b mask.Box) {
		if b.Empty() {
			return
		}
		x0, y0 := b.MinX/warpTile, b.MinY/warpTile
		x1, y1 := (b.MaxX-1)/warpTile, (b.MaxY-1)/warpTile
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > tx-1 {
			x1 = tx - 1
		}
		if y1 > ty-1 {
			y1 = ty - 1
		}
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				grid[y*tx+x] = true
			}
		}
	}
	for _, b := range moved {
		mark(b)
	}
	for _, b := range orphans {
		mark(b)
	}
	for _, set := range grid {
		if set {
			changed++
		}
	}
	return changed, total
}

// WarpCostMs is the backbone cost charged on the skip path: the fixed
// feature-warp cost plus per-changed-tile partial recompute, clamped at the
// full backbone cost (a warp can never cost more than recomputing).
func (p Profile) WarpCostMs(changedTiles int) float64 {
	ms := p.WarpMs + p.TileRecomputeMs*float64(changedTiles)
	if ms > p.BackboneMs {
		ms = p.BackboneMs
	}
	if ms < 0 {
		ms = 0
	}
	return ms
}

// WarpIoUScale is the bounded accuracy penalty of detecting on warped
// features: mask/box quality is scaled by 1 - min(age*WarpPenaltyPerFrame,
// WarpPenaltyMax). Age 0 (a keyframe) scales by exactly 1.
func (p Profile) WarpIoUScale(age int) float64 {
	pen := p.WarpPenaltyPerFrame * float64(age)
	if pen > p.WarpPenaltyMax {
		pen = p.WarpPenaltyMax
	}
	if pen < 0 {
		pen = 0
	}
	return 1 - pen
}

// warpSpec carries the skip-path cost overrides through the inference
// pipeline. A nil warpSpec is the vanilla full-backbone path.
type warpSpec struct {
	backboneMs float64
	iouScale   float64
	age        int
	changed    int
}

// RunWarped performs simulated inference under a keyframe decision.
// Keyframe decisions run the vanilla path (identical to Run); non-keyframe
// decisions charge the partial-backbone warp cost and apply the bounded IoU
// penalty. Everything else — RNG draw order, proposal stream, RPN and head
// costs — is shared with Run, so a decision of {Keyframe: true} is
// byte-identical to Run.
func (m *Model) RunWarped(in Input, g Guidance, d KeyframeDecision) *Result {
	if d.Keyframe {
		return m.Run(in, g)
	}
	rng := newRunRand(in.Seed)
	w := &warpSpec{
		backboneMs: m.Profile.WarpCostMs(d.ChangedTiles),
		iouScale:   m.Profile.WarpIoUScale(d.Age),
		age:        d.Age,
		changed:    d.ChangedTiles,
	}
	if m.Profile.RoIMs > 0 {
		return m.runTwoStage(in, g, rng, w)
	}
	return m.runOneStage(in, rng, w)
}

// RunBatchWarped is RunBatch with a keyframe decision per frame. Callers
// batch only frames of one keyframe class (the scheduler's batch former
// enforces this), but like RunBatch it does not itself care.
func (m *Model) RunBatchWarped(ins []Input, gs []Guidance, ds []KeyframeDecision) (outs []*Result, launchMs float64) {
	outs = make([]*Result, len(ins))
	solos := make([]float64, len(ins))
	for i, in := range ins {
		outs[i] = m.RunWarped(in, gs[i], ds[i])
		solos[i] = outs[i].TotalMs()
	}
	return outs, BatchMs(solos)
}
