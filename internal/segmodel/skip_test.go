package segmodel

import (
	"math"
	"testing"

	"edgeis/internal/mask"
)

// stubGuidance is a minimal Guidance + AreaProvider for skip-compute tests:
// anchors inside the given areas only, default NMS selection.
type stubGuidance struct {
	areas []mask.Box
}

func (g *stubGuidance) AnchorBudget(width, height int) int {
	total := 0
	for _, b := range g.areas {
		total += AnchorsInBox(b)
	}
	if full := FullGridAnchors(width, height); total > full {
		return full
	}
	return total
}

func (g *stubGuidance) Classify(b mask.Box) (int, int) {
	c := b.Center()
	for i, a := range g.areas {
		if a.Contains(int(c.X), int(c.Y)) {
			return i, 0
		}
	}
	return -1, 0
}

func (g *stubGuidance) SelectRoIs(props []Proposal) []Proposal {
	return DefaultNMS(props, 0.7, 100)
}

func (g *stubGuidance) CoversObjects(b mask.Box) bool {
	c := b.Center()
	for _, a := range g.areas {
		if a.Contains(int(c.X), int(c.Y)) {
			return true
		}
	}
	return false
}

func (g *stubGuidance) AreaBoxes() []mask.Box { return g.areas }

// guidanceFor builds a stub guidance whose areas are the input's object
// boxes expanded by a margin, shifted by (dx, dy).
func guidanceFor(in Input, dx, dy int) *stubGuidance {
	g := &stubGuidance{}
	for _, obj := range in.Objects {
		b := obj.Box.Expand(16, in.Width, in.Height)
		g.areas = append(g.areas, mask.Box{
			MinX: b.MinX + dx, MinY: b.MinY + dy,
			MaxX: b.MaxX + dx, MaxY: b.MaxY + dy,
		})
	}
	return g
}

func TestKeyframePolicyDisabled(t *testing.T) {
	in := testInput(1)
	c := NewFeatureCache()
	var p KeyframePolicy // zero value: disabled
	for i := 0; i < 5; i++ {
		d := p.Decide(c, in, nil)
		if !d.Keyframe || d.Reason != KeyDisabled {
			t.Fatalf("frame %d: disabled policy produced %+v, want keyframe/disabled", i, d)
		}
	}
	if c.Valid() {
		t.Error("disabled policy must leave the cache cold")
	}
	// Interval 1 is likewise disabled.
	if (KeyframePolicy{Interval: 1}).Enabled() {
		t.Error("Interval 1 should be disabled")
	}
	// Nil cache always keyframes even when the policy is on.
	d := KeyframePolicy{Interval: 4}.Decide(nil, in, nil)
	if !d.Keyframe || d.Reason != KeyDisabled {
		t.Errorf("nil cache: got %+v, want keyframe/disabled", d)
	}
}

func TestKeyframeDecisionSequence(t *testing.T) {
	in := testInput(1)
	g := guidanceFor(in, 0, 0)
	c := NewFeatureCache()
	p := KeyframePolicy{Interval: 4}

	wantReasons := []KeyframeReason{KeyCold, KeyNone, KeyNone, KeyNone, KeyInterval, KeyNone}
	wantAges := []int{0, 1, 2, 3, 0, 1}
	for i, want := range wantReasons {
		d := p.Decide(c, in, g)
		if d.Reason != want {
			t.Fatalf("frame %d: reason %q, want %q", i, d.Reason, want)
		}
		if d.Keyframe != (want != KeyNone) {
			t.Fatalf("frame %d: Keyframe=%v inconsistent with reason %q", i, d.Keyframe, want)
		}
		if d.Age != wantAges[i] {
			t.Fatalf("frame %d: age %d, want %d", i, d.Age, wantAges[i])
		}
		if !d.Keyframe && d.ChangedTiles != 0 {
			t.Fatalf("frame %d: static guidance changed %d tiles, want 0", i, d.ChangedTiles)
		}
	}
}

func TestKeyframeOnContinuityLoss(t *testing.T) {
	in := testInput(1)
	g := guidanceFor(in, 0, 0)
	c := NewFeatureCache()
	p := KeyframePolicy{Interval: 8}
	p.Decide(c, in, g) // guided keyframe
	d := p.Decide(c, in, nil)
	if !d.Keyframe || d.Reason != KeyContinuity {
		t.Fatalf("guidance loss: got %+v, want keyframe/continuity", d)
	}
	// An unguided cache tolerates unguided frames.
	d = p.Decide(c, in, nil)
	if d.Keyframe {
		t.Fatalf("unguided cache, unguided frame: got keyframe %q", d.Reason)
	}
}

func TestKeyframeOnResolutionChange(t *testing.T) {
	in := testInput(1)
	c := NewFeatureCache()
	p := KeyframePolicy{Interval: 8}
	p.Decide(c, in, nil)
	small := in
	small.Width, small.Height = 320, 240
	d := p.Decide(c, small, nil)
	if !d.Keyframe || d.Reason != KeyResolution {
		t.Fatalf("resolution change: got %+v, want keyframe/resolution", d)
	}
}

func TestKeyframeOnChurn(t *testing.T) {
	in := testInput(1)
	c := NewFeatureCache()
	p := KeyframePolicy{Interval: 8}
	p.Decide(c, in, guidanceFor(in, 0, 0))
	// Both contours jump far beyond MotionThreshold x their scale.
	d := p.Decide(c, in, guidanceFor(in, 150, 120))
	if !d.Keyframe || d.Reason != KeyChurn {
		t.Fatalf("large motion: got %+v, want keyframe/churn", d)
	}
}

func TestNonKeyframeCountsChangedTiles(t *testing.T) {
	in := testInput(1)
	c := NewFeatureCache()
	p := KeyframePolicy{Interval: 8}
	p.Decide(c, in, guidanceFor(in, 0, 0))
	// Move only the guidance slightly-beyond-threshold: with churn at the
	// 0.5 default limit (not above), the frame stays a non-keyframe but
	// the moved contour's tiles must be charged.
	g := guidanceFor(in, 0, 0)
	b := g.areas[0]
	shift := int(0.3*math.Sqrt(float64(b.Area()))) + 1
	g.areas[0] = mask.Box{MinX: b.MinX + shift, MinY: b.MinY, MaxX: b.MaxX + shift, MaxY: b.MaxY}
	d := p.Decide(c, in, g)
	if d.Keyframe {
		t.Fatalf("half-churn frame forced keyframe: %+v", d)
	}
	if d.ChangedTiles <= 0 {
		t.Fatal("moved contour should change tiles")
	}
	if d.TotalTiles != 80 { // 640x480 on a 64 px grid
		t.Fatalf("TotalTiles = %d, want 80", d.TotalTiles)
	}
	if d.ChangedTiles >= d.TotalTiles {
		t.Fatalf("one moved contour changed all %d tiles", d.ChangedTiles)
	}
}

func TestInvalidateForcesColdKeyframe(t *testing.T) {
	in := testInput(1)
	c := NewFeatureCache()
	p := KeyframePolicy{Interval: 8}
	p.Decide(c, in, nil)
	if !c.Valid() {
		t.Fatal("cache should be valid after a keyframe")
	}
	c.Invalidate()
	if c.Valid() {
		t.Fatal("Invalidate left the cache valid")
	}
	d := p.Decide(c, in, nil)
	if !d.Keyframe || d.Reason != KeyCold {
		t.Fatalf("after Invalidate: got %+v, want keyframe/cold", d)
	}
}

// TestMigrationForcesKeyframe pins the session-migration rule at the
// decision layer: when a session fails over to another replica, its warm
// feature cache stays behind on the dead edge — the adopting replica starts
// from a fresh cache, so the first post-migration frame must be a cold
// keyframe no matter where the session was in its interval. Warping against
// a pyramid the new replica never computed is exactly the lost-keyframe
// hazard Invalidate guards against.
func TestMigrationForcesKeyframe(t *testing.T) {
	in := testInput(1)
	g := guidanceFor(in, 0, 0)
	p := KeyframePolicy{Interval: 8}

	// The original replica's stream: keyframe then two warps — mid-interval,
	// nothing would force a keyframe for frames to come.
	old := NewFeatureCache()
	p.Decide(old, in, g)
	p.Decide(old, in, g)
	if d := p.Decide(old, in, g); d.Keyframe {
		t.Fatalf("pre-migration stream not mid-interval: %+v", d)
	}

	// Failover: the adopting replica has never seen this session. Its cache
	// is fresh, so the same next frame that would have warped is forced cold.
	adopted := NewFeatureCache()
	d := p.Decide(adopted, in, g)
	if !d.Keyframe || d.Reason != KeyCold || d.Age != 0 {
		t.Fatalf("first post-migration frame: got %+v, want keyframe/cold at age 0", d)
	}
	// And the forced keyframe re-primes the stream: the frame after it may
	// warp again, interval counting restarted from the migration point.
	if d := p.Decide(adopted, in, g); d.Keyframe {
		t.Fatalf("frame after the forced keyframe: got %+v, want non-keyframe", d)
	}
}

func TestRunWarpedKeyframeIdenticalToRun(t *testing.T) {
	for _, kind := range []Kind{MaskRCNN, YOLACT, YOLOv3} {
		in := testInput(7)
		a := New(kind).Run(in, nil)
		b := New(kind).RunWarped(in, nil, KeyframeDecision{Keyframe: true, Reason: KeyDisabled})
		if a.TotalMs() != b.TotalMs() || len(a.Detections) != len(b.Detections) {
			t.Fatalf("%v: keyframe RunWarped diverged from Run", kind)
		}
		for i := range a.Detections {
			if a.Detections[i].TrueIoU != b.Detections[i].TrueIoU ||
				a.Detections[i].Box != b.Detections[i].Box {
				t.Fatalf("%v: detection %d differs", kind, i)
			}
		}
		if b.Warped {
			t.Fatalf("%v: keyframe result marked Warped", kind)
		}
	}
}

func TestRunWarpedChargesPartialBackbone(t *testing.T) {
	m := New(MaskRCNN)
	in := testInput(3)
	d := KeyframeDecision{Age: 1, ChangedTiles: 4}
	res := m.RunWarped(in, nil, d)
	if !res.Warped {
		t.Fatal("non-keyframe result not marked Warped")
	}
	want := m.Profile.WarpMs + 4*m.Profile.TileRecomputeMs
	if res.BackboneMs != want {
		t.Fatalf("warped BackboneMs = %v, want %v", res.BackboneMs, want)
	}
	full := m.Run(in, nil)
	if res.BackboneMs >= full.BackboneMs {
		t.Fatalf("warp (%.1f ms) not cheaper than backbone (%.1f ms)", res.BackboneMs, full.BackboneMs)
	}
	// Everything outside the backbone is untouched.
	if res.RPNMs != full.RPNMs || res.SelectionMs != full.SelectionMs || res.HeadMs != full.HeadMs {
		t.Fatal("warp changed a non-backbone cost component")
	}
	if res.CacheAge != 1 || res.ChangedTiles != 4 {
		t.Fatalf("warp provenance %d/%d, want 1/4", res.CacheAge, res.ChangedTiles)
	}
}

func TestWarpCostClampsAtBackbone(t *testing.T) {
	p := DefaultProfile(MaskRCNN)
	if got := p.WarpCostMs(0); got != p.WarpMs {
		t.Errorf("WarpCostMs(0) = %v, want WarpMs %v", got, p.WarpMs)
	}
	if got := p.WarpCostMs(1 << 20); got != p.BackboneMs {
		t.Errorf("fully-changed frame: WarpCostMs = %v, want BackboneMs %v", got, p.BackboneMs)
	}
	bad := Profile{WarpMs: -5, BackboneMs: 36}
	if got := bad.WarpCostMs(0); got != 0 {
		t.Errorf("negative warp cost not clamped: %v", got)
	}
}

func TestWarpIoUScaleBounded(t *testing.T) {
	p := DefaultProfile(MaskRCNN)
	if s := p.WarpIoUScale(0); s != 1 {
		t.Errorf("age 0 scale = %v, want 1", s)
	}
	floor := 1 - p.WarpPenaltyMax
	for age := 0; age < 100; age++ {
		s := p.WarpIoUScale(age)
		if s < floor || s > 1 {
			t.Fatalf("age %d: scale %v outside [%v, 1]", age, s, floor)
		}
		if age > 0 && s > p.WarpIoUScale(age-1) {
			t.Fatalf("scale not monotone at age %d", age)
		}
	}
}

func TestWarpedIoUPenaltyMeasurable(t *testing.T) {
	mean := func(d KeyframeDecision) float64 {
		sum, n := 0.0, 0
		for seed := int64(0); seed < 30; seed++ {
			res := New(MaskRCNN).RunWarped(testInput(seed), nil, d)
			for _, det := range res.Detections {
				sum += det.TrueIoU
				n++
			}
		}
		if n == 0 {
			t.Fatal("no detections")
		}
		return sum / float64(n)
	}
	oracle := mean(KeyframeDecision{Keyframe: true})
	warped := mean(KeyframeDecision{Age: 3})
	if warped >= oracle {
		t.Errorf("warped IoU %.4f not below oracle %.4f", warped, oracle)
	}
	// Bounded: the realized penalty stays within the documented cap (plus
	// boundary-noise slack).
	floor := oracle * (1 - DefaultProfile(MaskRCNN).WarpPenaltyMax)
	if warped < floor-0.02 {
		t.Errorf("warped IoU %.4f fell below the bounded floor %.4f", warped, floor)
	}
}

func TestBatchMsClampsNegativeSolos(t *testing.T) {
	if got := BatchMs([]float64{-5}); got != 0 {
		t.Errorf("BatchMs({-5}) = %v, want 0", got)
	}
	// A negative member contributes nothing; it must not subtract.
	if got, want := BatchMs([]float64{10, -5}), 10.0; got != want {
		t.Errorf("BatchMs({10,-5}) = %v, want %v", got, want)
	}
	if got := BatchMs([]float64{-1, -2, -3}); got != 0 {
		t.Errorf("BatchMs(all negative) = %v, want 0", got)
	}
	// Sane inputs are unchanged: max + 0.5*(sum-max).
	if got, want := BatchMs([]float64{10, 6, 4}), 10+0.5*10; got != want {
		t.Errorf("BatchMs({10,6,4}) = %v, want %v", got, want)
	}
}

func TestRunBatchClampsNegativeCost(t *testing.T) {
	m := New(YOLACT)
	m.Profile.BackboneMs = -500 // deliberately miscalibrated
	ins := []Input{testInput(1), testInput(2)}
	_, launchMs := m.RunBatch(ins, []Guidance{nil, nil})
	if launchMs < 0 {
		t.Errorf("RunBatch launchMs = %v, want >= 0", launchMs)
	}
}

func TestRunBatchWarpedMatchesRunWarped(t *testing.T) {
	m := New(MaskRCNN)
	ins := []Input{testInput(1), testInput(2), testInput(3)}
	gs := []Guidance{nil, nil, nil}
	ds := []KeyframeDecision{
		{Keyframe: true, Reason: KeyInterval},
		{Age: 1, ChangedTiles: 2},
		{Age: 2, ChangedTiles: 0},
	}
	outs, launchMs := m.RunBatchWarped(ins, gs, ds)
	solos := make([]float64, len(ins))
	for i := range ins {
		want := m.Clone().RunWarped(ins[i], gs[i], ds[i])
		if outs[i].TotalMs() != want.TotalMs() || len(outs[i].Detections) != len(want.Detections) {
			t.Fatalf("frame %d: batched output differs from solo RunWarped", i)
		}
		if outs[i].Warped != want.Warped {
			t.Fatalf("frame %d: Warped flag differs", i)
		}
		solos[i] = want.TotalMs()
	}
	if launchMs != BatchMs(solos) {
		t.Errorf("launchMs = %v, want BatchMs %v", launchMs, BatchMs(solos))
	}
}
