package segmodel

import (
	"math"
	"testing"

	"edgeis/internal/mask"
)

// testInput builds a frame with two well-separated objects.
func testInput(seed int64) Input {
	m1 := mask.New(640, 480)
	for y := 100; y < 220; y++ {
		for x := 80; x < 260; x++ {
			m1.Set(x, y)
		}
	}
	m2 := mask.New(640, 480)
	for y := 280; y < 380; y++ {
		for x := 400; x < 520; x++ {
			m2.Set(x, y)
		}
	}
	return Input{
		Width: 640, Height: 480,
		Objects: []ObjectTruth{
			{ObjectID: 1, Label: 2, Visible: m1, Box: m1.BoundingBox()},
			{ObjectID: 2, Label: 1, Visible: m2, Box: m2.BoundingBox()},
		},
		Seed: seed,
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{MaskRCNN, YOLACT, YOLOv3} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestDefaultProfileLatencyCalibration(t *testing.T) {
	// Fig. 2b: Mask R-CNN ~400 ms, YOLACT ~120 ms, YOLOv3 ~30 ms on the
	// reference edge device.
	tests := []struct {
		kind Kind
		want float64
		tol  float64
	}{
		{MaskRCNN, 400, 20},
		{YOLACT, 120, 10},
		{YOLOv3, 30, 5},
	}
	for _, tt := range tests {
		m := New(tt.kind)
		res := m.Run(testInput(1), nil)
		if math.Abs(res.TotalMs()-tt.want) > tt.tol {
			t.Errorf("%v: latency %.1f ms, want ~%.0f", tt.kind, res.TotalMs(), tt.want)
		}
	}
}

func TestAccuracyOrdering(t *testing.T) {
	// Fig. 2b: YOLOv3 boxes ~0.98, Mask R-CNN ~0.92+, YOLACT ~0.75.
	mean := func(kind Kind) float64 {
		sum, n := 0.0, 0
		for seed := int64(0); seed < 20; seed++ {
			res := New(kind).Run(testInput(seed), nil)
			for _, d := range res.Detections {
				sum += d.TrueIoU
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	rcnn, yolact, yolo := mean(MaskRCNN), mean(YOLACT), mean(YOLOv3)
	if !(yolo > rcnn && rcnn > yolact) {
		t.Errorf("accuracy ordering violated: yolov3=%.3f rcnn=%.3f yolact=%.3f",
			yolo, rcnn, yolact)
	}
	if rcnn < 0.88 {
		t.Errorf("Mask R-CNN IoU %.3f, want >= 0.88", rcnn)
	}
	if yolact > 0.88 || yolact < 0.6 {
		t.Errorf("YOLACT IoU %.3f, want in [0.6, 0.88]", yolact)
	}
}

func TestYOLOv3IsBoxOnly(t *testing.T) {
	res := New(YOLOv3).Run(testInput(3), nil)
	if len(res.Detections) == 0 {
		t.Fatal("no detections")
	}
	for _, d := range res.Detections {
		if d.Mask != nil {
			t.Error("detector emitted a mask")
		}
		if d.Box.Empty() {
			t.Error("empty detection box")
		}
	}
}

func TestQualityDegradesMasks(t *testing.T) {
	clean := testInput(4)
	dirty := testInput(4)
	dirty.Quality = func(x, y int) float64 { return 0.25 }
	mi := func(in Input) float64 {
		sum, n := 0.0, 0
		for seed := int64(0); seed < 15; seed++ {
			in.Seed = seed
			res := New(MaskRCNN).Run(in, nil)
			for _, d := range res.Detections {
				sum += d.TrueIoU
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if mi(dirty) >= mi(clean) {
		t.Errorf("low quality should degrade IoU: clean=%.3f dirty=%.3f", mi(clean), mi(dirty))
	}
}

func TestSmallObjectsMissedMore(t *testing.T) {
	big := mask.New(640, 480)
	for y := 100; y < 300; y++ {
		for x := 100; x < 400; x++ {
			big.Set(x, y)
		}
	}
	small := mask.New(640, 480)
	for y := 400; y < 412; y++ {
		for x := 500; x < 515; x++ {
			small.Set(x, y)
		}
	}
	in := Input{
		Width: 640, Height: 480,
		Objects: []ObjectTruth{
			{ObjectID: 1, Label: 1, Visible: big, Box: big.BoundingBox()},
			{ObjectID: 2, Label: 2, Visible: small, Box: small.BoundingBox()},
		},
	}
	bigHits, smallHits := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		in.Seed = seed
		res := New(MaskRCNN).Run(in, nil)
		for _, d := range res.Detections {
			switch d.ObjectID {
			case 1:
				bigHits++
			case 2:
				smallHits++
			}
		}
	}
	if bigHits <= smallHits {
		t.Errorf("big=%d small=%d: small objects should be missed more", bigHits, smallHits)
	}
	if bigHits < 55 {
		t.Errorf("big object detected only %d/60 times", bigHits)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := New(MaskRCNN).Run(testInput(9), nil)
	b := New(MaskRCNN).Run(testInput(9), nil)
	if a.TotalMs() != b.TotalMs() || len(a.Detections) != len(b.Detections) {
		t.Fatal("same seed produced different results")
	}
	for i := range a.Detections {
		if a.Detections[i].TrueIoU != b.Detections[i].TrueIoU {
			t.Fatal("detection mismatch")
		}
	}
}

func TestFullGridAnchors(t *testing.T) {
	got := FullGridAnchors(640, 480)
	want := 0
	for _, s := range []int{4, 8, 16, 32, 64} {
		want += (640 / s) * (480 / s) * 3
	}
	if got != want {
		t.Errorf("FullGridAnchors = %d, want %d", got, want)
	}
}

func TestLevelForBox(t *testing.T) {
	tests := []struct {
		area int
		want int
	}{
		{224 * 224, 2},
		{112 * 112, 1},
		{448 * 448, 3},
		{10, 0},
		{0, 0},
		{4000 * 4000, 4}, // clamped to the top level
	}
	for _, tt := range tests {
		if got := LevelForBox(tt.area); got != tt.want {
			t.Errorf("LevelForBox(%d) = %d, want %d", tt.area, got, tt.want)
		}
	}
}

func TestAnchorsInBox(t *testing.T) {
	b := mask.Box{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64}
	n := AnchorsInBox(b)
	if n <= 0 {
		t.Fatal("no anchors for a valid box")
	}
	if AnchorsInBox(mask.Box{}) != 0 {
		t.Error("empty box should contribute no anchors")
	}
	// A larger box maps to a coarser level but still more/equal cells.
	big := mask.Box{MinX: 0, MinY: 0, MaxX: 512, MaxY: 512}
	if AnchorsInBox(big) <= 0 {
		t.Error("no anchors for big box")
	}
}

func TestDefaultNMS(t *testing.T) {
	props := []Proposal{
		{Box: mask.Box{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, Score: 0.9},
		{Box: mask.Box{MinX: 2, MinY: 2, MaxX: 102, MaxY: 102}, Score: 0.8},     // overlaps first
		{Box: mask.Box{MinX: 300, MinY: 300, MaxX: 400, MaxY: 400}, Score: 0.7}, // disjoint
	}
	kept := DefaultNMS(props, 0.7, 10)
	if len(kept) != 2 {
		t.Fatalf("kept %d, want 2", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.7 {
		t.Error("wrong survivors")
	}
	// maxKeep respected.
	if got := DefaultNMS(props, 0.99, 1); len(got) != 1 {
		t.Errorf("maxKeep violated: %d", len(got))
	}
}

func TestLatencySplitConsistency(t *testing.T) {
	res := New(MaskRCNN).Run(testInput(5), nil)
	if res.AnchorsEvaluated != res.FullGridAnchors {
		t.Error("vanilla run should evaluate the full grid")
	}
	if res.RoIsProcessed > DefaultProfile(MaskRCNN).MaxRoIs {
		t.Error("RoI budget exceeded")
	}
	sum := res.BackboneMs + res.RPNMs + res.SelectionMs + res.HeadMs
	if math.Abs(sum-res.TotalMs()) > 1e-9 {
		t.Error("TotalMs != sum of parts")
	}
}
