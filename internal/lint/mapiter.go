package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// deterministicPkgs are the packages whose output must be a pure function
// of the experiment seed: anything feeding the golden-pinned sim pipeline.
// Map iteration order leaking into their output is exactly the bug class
// PR 2 fixed by hand in internal/vo.
var deterministicPkgs = map[string]bool{
	"vo":          true,
	"core":        true,
	"pipeline":    true,
	"experiments": true,
	"scene":       true,
	"feature":     true,
	"segmodel":    true,
	"netsim":      true,
	"baseline":    true,
	"roisel":      true,
	// loadgen's simulator reports are committed as BENCH_serving.json and
	// diffed byte-for-byte, so map order must not leak into them.
	"loadgen": true,
}

// MapIter flags `for range` over a map in deterministic packages unless the
// loop body is provably order-insensitive or the site carries an
// //edgeis:ordered suppression.
var MapIter = &Analyzer{
	Name:      "mapiter",
	Directive: "ordered",
	Doc: `flags range-over-map in seed-deterministic packages

Go randomizes map iteration order, so any map range whose body's effect
depends on visit order makes identical seeds produce different runs. Iterate
over sorted keys instead, or annotate the loop with
//edgeis:ordered <reason> if order provably cannot leak into output.

Recognized order-insensitive bodies are not flagged: commutative
accumulation (sum += v, n++), per-key writes (other[k] = f(v)), delete(m, k),
and the collect-then-sort idiom (keys = append(keys, k) followed by a sort
of that slice in the same block).`,
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	if !deterministicPkgs[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Statements live in block, case-clause, and comm-clause lists;
			// scan each list so a range's trailing statements are in hand
			// for the collect-then-sort idiom.
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if lbl, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = lbl.Stmt
				}
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if !isMapRange(pass, rng) {
					continue
				}
				if orderInsensitiveBody(pass, rng, list[i+1:]) {
					continue
				}
				pass.Reportf(rng.For,
					"range over map %s in deterministic package %q: iteration order is randomized; iterate sorted keys or annotate //edgeis:ordered <reason>",
					exprString(pass, rng.X), pass.PkgBase())
			}
			return true
		})
	}
	return nil
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderInsensitiveBody reports whether every statement in the range body is
// one whose cumulative effect is independent of visit order. rest holds the
// statements following the range in its enclosing block, used to recognize
// the collect-then-sort idiom. Conditions of if statements are assumed
// side-effect-free; //edgeis:ordered remains the escape hatch for bodies
// beyond the heuristic.
func orderInsensitiveBody(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	// constWrites records map writes of constant values, keyed by the
	// written expression's printed form: set-building like seen[id] = true
	// is idempotent, but two sites writing DIFFERENT constants to one map
	// would make collisions order-dependent.
	constWrites := map[string][]constant.Value{}
	if !orderInsensitiveStmts(pass, rng, rng.Body.List, rest, constWrites) {
		return false
	}
	for _, vals := range constWrites {
		for _, v := range vals[1:] {
			if constant.Compare(vals[0], token.NEQ, v) {
				return false
			}
		}
	}
	return true
}

func orderInsensitiveStmts(pass *Pass, rng *ast.RangeStmt, stmts, rest []ast.Stmt, constWrites map[string][]constant.Value) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// n++ / n-- : commutative.
		case *ast.BranchStmt:
			// Skipping an entry is order-free; break/goto are not.
			if s.Tok != token.CONTINUE || s.Label != nil {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, k) removes per key: commutative.
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "delete") {
				return false
			}
		case *ast.IfStmt:
			// A pure filter around order-insensitive work stays
			// order-insensitive. Init may only declare fresh variables.
			if s.Init != nil {
				init, ok := s.Init.(*ast.AssignStmt)
				if !ok || init.Tok != token.DEFINE {
					return false
				}
			}
			if !orderInsensitiveStmts(pass, rng, s.Body.List, rest, constWrites) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitiveStmts(pass, rng, e.List, rest, constWrites) {
					return false
				}
			case *ast.IfStmt:
				if !orderInsensitiveStmts(pass, rng, []ast.Stmt{e}, rest, constWrites) {
					return false
				}
			default:
				return false
			}
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(pass, rng, s, rest, constWrites) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(pass *Pass, rng *ast.RangeStmt, s *ast.AssignStmt, rest []ast.Stmt, constWrites map[string][]constant.Value) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// sum += v and friends: commutative accumulation. (Float rounding
		// does depend on order, but floateq guards the comparisons where
		// that bites; treating += as clean keeps the analyzer useful.)
		return true
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		// keys = append(keys, ...) is order-sensitive on its own but is the
		// front half of the canonical sorted-iteration fix; accept it when a
		// sort of the same slice follows in the enclosing block.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
			if dst, ok := s.Lhs[0].(*ast.Ident); ok && sortedLater(pass, dst, rest) {
				return true
			}
			return false
		}
		idx, ok := s.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		// other[k] = v writes one entry per distinct key: commutative.
		if keyIdent, ok := rng.Key.(*ast.Ident); ok && keyIdent.Name != "_" {
			if i, ok := idx.Index.(*ast.Ident); ok && pass.TypesInfo.Uses[i] == pass.TypesInfo.Defs[keyIdent] {
				return true
			}
		}
		// seen[expr] = true builds a set: collisions rewrite the same
		// constant, so order cannot show. Recorded for the cross-site
		// same-constant check in orderInsensitiveBody.
		if tv, ok := pass.TypesInfo.Types[s.Rhs[0]]; ok && tv.Value != nil {
			target := types.ExprString(idx.X)
			constWrites[target] = append(constWrites[target], tv.Value)
			return true
		}
		return false
	default:
		return false
	}
}

// sortedLater reports whether one of the statements after the range loop is
// a sort.X(...) call whose arguments mention dst.
func sortedLater(pass *Pass, dst *ast.Ident, rest []ast.Stmt) bool {
	obj := pass.TypesInfo.Uses[dst]
	if obj == nil {
		obj = pass.TypesInfo.Defs[dst]
	}
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || !isPkgName(pass, pkg, "sort") {
			continue
		}
		mentions := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && obj != nil && pass.TypesInfo.Uses[id] == obj {
					mentions = true
				}
				return !mentions
			})
		}
		if mentions {
			return true
		}
	}
	return false
}

// isBuiltin reports whether fun is a direct use of the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// isPkgName reports whether id resolves to the import of the given package.
func isPkgName(pass *Pass, id *ast.Ident, pkgPath string) bool {
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// exprString renders a short source-ish form of e for diagnostics.
func exprString(pass *Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(pass, e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(pass, e.Fun) + "(...)"
	default:
		return "expression"
	}
}
