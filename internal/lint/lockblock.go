package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBlock forbids blocking operations inside critical sections. The
// serving stack's SLA is one queue-wait away from a miss; a channel
// operation, socket write, accelerator run, or call into another
// lock-taking method while a mutex is held turns one slow peer into a
// fleet-wide stall (or a lock-ordering deadlock).
var LockBlock = &Analyzer{
	Name:      "lockblock",
	Directive: "lockheld",
	Doc: `flags blocking operations while a mutex is held

While a sync.Mutex/RWMutex is held, the critical section must not block:
channel sends and receives, select statements without a default case,
net.Conn I/O (direct or via a same-package helper), Accelerator
Run/RunBatch, and calls into same-package methods that themselves take a
lock are all flagged. Bounded, reviewed exceptions (a buffered
single-sender channel, a serialized connection writer) must be annotated
//edgeis:lockheld <reason>.`,
	Run: runLockBlock,
}

func runLockBlock(pass *Pass) error {
	lockTakers, netIOFuncs := indexBlockingFuncs(pass)
	w := &lockWalker{pass: pass}
	line := func(pos token.Pos) int { return pass.Fset.Position(pos).Line }
	w.hooks = lockHooks{
		onBlocking: func(pos token.Pos, what, key string, lockPos token.Pos) {
			pass.Reportf(pos,
				"%s while holding %s (locked at line %d); move it outside the critical section or annotate //edgeis:lockheld <reason>",
				what, displayKey(key), line(lockPos))
		},
		blockingCall: func(call *ast.CallExpr) (string, bool) {
			return classifyBlockingCall(pass, call, lockTakers, netIOFuncs)
		},
	}
	for _, f := range pass.Files {
		w.walkFile(f)
	}
	return nil
}

// indexBlockingFuncs precomputes, over the package's own declarations, the
// functions that take a mutex lock anywhere in their body and the functions
// that perform direct net.Conn I/O — the one level of interprocedural
// context the analyzer chases.
func indexBlockingFuncs(pass *Pass) (lockTakers, netIOFuncs map[*types.Func]bool) {
	lockTakers = map[*types.Func]bool{}
	netIOFuncs = map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op := classifyMutexOp(pass, call); op != nil {
					switch op.name {
					case "Lock", "RLock", "TryLock", "TryRLock":
						lockTakers[obj] = true
					}
					return false
				}
				if isNetConnIO(pass, call) {
					netIOFuncs[obj] = true
				}
				return true
			})
		}
	}
	return lockTakers, netIOFuncs
}

// classifyBlockingCall names the blocking hazard call represents, if any.
func classifyBlockingCall(pass *Pass, call *ast.CallExpr, lockTakers, netIOFuncs map[*types.Func]bool) (string, bool) {
	if isNetConnIO(pass, call) {
		return "net.Conn I/O", true
	}
	if name, ok := isAcceleratorRun(pass, call); ok {
		return "Accelerator." + name, true
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	if lockTakers[fn] {
		return "call into " + fn.Name() + ", which takes a lock", true
	}
	if netIOFuncs[fn] {
		return "net.Conn I/O via " + fn.Name(), true
	}
	return "", false
}

// calleeFunc resolves the called function or method, when statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isNetConnIO reports whether call is Read/Write on a net.Conn-shaped
// receiver: the static type is net.Conn itself or implements it.
func isNetConnIO(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	// The deadline setters are included because they are net.Conn-specific
	// and mark helpers (like Server.write) that wrap their socket I/O in a
	// deadline before handing the conn to an io.Writer-typed writer.
	case "Read", "Write", "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	conn := netConnType(pass)
	if conn == nil {
		return false
	}
	t := tv.Type
	if types.Implements(t, conn) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		return types.Implements(p.Elem(), conn)
	}
	return types.Implements(types.NewPointer(t), conn)
}

// netConnType returns the net.Conn interface if the package (or one of its
// direct imports) brings it into the type graph, else nil.
func netConnType(pass *Pass) *types.Interface {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "net" {
			continue
		}
		obj, ok := imp.Scope().Lookup("Conn").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// isAcceleratorRun reports whether call is Run or RunBatch on a receiver
// whose (possibly dereferenced) named type is called Accelerator — the
// serving stack's inference interface, whose calls model real device
// latency and must never run under a scheduler lock.
func isAcceleratorRun(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Run", "RunBatch":
	default:
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Accelerator" {
		return "", false
	}
	return sel.Sel.Name, true
}
