package lint

import (
	"go/ast"
)

// WgAdd flags the classic WaitGroup race: calling Add inside the goroutine
// it accounts for. If Wait runs before the goroutine is scheduled, the
// counter is still zero and Wait returns with the work unstarted — a drain
// path that silently drops frames under exactly the load it exists for.
var WgAdd = &Analyzer{
	Name:      "wgadd",
	Directive: "wgadd",
	Doc: `flags WaitGroup.Add calls inside the spawned goroutine

sync.WaitGroup.Add must happen-before the Wait that observes it; an Add
inside the goroutine races Wait, which can return before the goroutine is
scheduled. Only Adds on a WaitGroup declared outside the goroutine body are
flagged — a group created and waited on entirely inside the goroutine is
its own synchronization domain. Reviewed exceptions must be annotated
//edgeis:wgadd <reason>.`,
	Run: runWgAdd,
}

func runWgAdd(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineAdds(pass, lit)
			return true
		})
	}
	return nil
}

// checkGoroutineAdds reports WaitGroup.Add calls lexically inside lit whose
// group is declared outside it. Nested go statements are skipped — each is
// checked against its own literal.
func checkGoroutineAdds(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || !isSyncMethod(pass, sel, "WaitGroup") {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil {
			return true
		}
		obj := pass.TypesInfo.Uses[root]
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"WaitGroup.Add on %s inside the goroutine it accounts for races Wait; Add before the go statement, or annotate //edgeis:wgadd <reason>",
			exprString(pass, sel.X))
		return true
	})
}

// rootIdent returns the base identifier of a selector chain (s.wg -> s),
// or nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
