// Package analysistest runs lint analyzers over fixture packages and checks
// reported findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in testdata/src/<pkg>/*.go. A line that should produce a
// finding carries a trailing comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// with one quoted regexp per expected finding on that line. Lines without a
// want comment must produce no findings; leftover wants and unexpected
// findings both fail the test.
package analysistest

import (
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"edgeis/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package from testdata/src/<pkg>, applies the
// analyzer, and diffs findings against // want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(a.Name+"/"+pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(testdata, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *lint.Analyzer) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (err=%v)", dir, err)
	}
	sort.Strings(files)
	pkg, err := lint.TypeCheck(pkgPath, files, nil)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	diags, err := lint.CheckPackage(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := posKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding [%s]: %s", key.file, key.line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants parses // want comments from the fixture's ASTs.
func collectWants(t *testing.T, pkg *lint.Package) map[posKey][]want {
	t.Helper()
	wants := map[posKey][]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					unq, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %q: %v", key.file, key.line, m[0], err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", key.file, key.line, unq, err)
					}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}
