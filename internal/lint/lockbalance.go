package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockBalance enforces lock discipline on every function in the tree: each
// mu.Lock() must reach an Unlock (manual or deferred) on every path, merging
// branches must agree on the held set, loops must not compound lock state,
// and a manual Unlock under a still-pending deferred Unlock — the
// unlock-relock dance the scheduler's gather window uses — must be reviewed
// and annotated.
var LockBalance = &Analyzer{
	Name:      "lockbalance",
	Directive: "lockdance",
	Doc: `flags unbalanced mutex Lock/Unlock pairs

Every sync.Mutex/RWMutex Lock must be released on all paths out of the
function: an early return that skips the Unlock, a branch that unlocks on
one arm only, or a loop body that locks once more per iteration is a
deadlock (or double-unlock panic) waiting for the right interleaving. A
manual Unlock while a deferred Unlock of the same mutex is still pending is
the unlock-relock dance: legal but panic-prone under refactoring, so each
reviewed instance must be annotated //edgeis:lockdance <reason>.`,
	Run: runLockBalance,
}

// displayKey renders a lock-state key for humans: the "/r" suffix marking
// the RWMutex reader side becomes an explicit annotation.
func displayKey(key string) string {
	if base, ok := strings.CutSuffix(key, "/r"); ok {
		return base + " (read side)"
	}
	return key
}

func runLockBalance(pass *Pass) error {
	w := &lockWalker{pass: pass}
	line := func(pos token.Pos) int { return pass.Fset.Position(pos).Line }
	w.hooks = lockHooks{
		onDoubleLock: func(call *ast.CallExpr, op *mutexOp, prev token.Pos) {
			pass.Reportf(call.Pos(),
				"%s of %s while already held since line %d: self-deadlock on this path",
				op.name, displayKey(op.key), line(prev))
		},
		onUnlockUnheld: func(call *ast.CallExpr, op *mutexOp) {
			pass.Reportf(call.Pos(),
				"%s of %s which is not held on this path", op.name, displayKey(op.key))
		},
		onDance: func(call *ast.CallExpr, op *mutexOp, deferPos token.Pos) {
			pass.Reportf(call.Pos(),
				"manual %s of %s while its deferred unlock (line %d) is pending: unlock-relock dance; annotate //edgeis:lockdance <reason> once reviewed",
				op.name, displayKey(op.key), line(deferPos))
		},
		onHeldAtReturn: func(pos token.Pos, key string, lockPos token.Pos) {
			pass.Reportf(pos,
				"%s locked at line %d is still held at this return with no deferred unlock",
				displayKey(key), line(lockPos))
		},
		onBranchImbalance: func(pos token.Pos, key string) {
			pass.Reportf(pos,
				"%s is held on some paths but not others where branches merge",
				displayKey(key))
		},
		onLoopImbalance: func(pos token.Pos, key string) {
			pass.Reportf(pos,
				"%s changes held state across one loop iteration: each pass compounds the imbalance",
				displayKey(key))
		},
	}
	for _, f := range pass.Files {
		w.walkFile(f)
	}
	return nil
}
