package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// longLivedPkgs are the packages whose processes outlive single requests:
// the serving stack, the transport layer, and the load harness. A goroutine
// spawned there with no shutdown path accumulates across sessions until the
// process dies — the leak only shows up at fleet scale.
var longLivedPkgs = map[string]bool{
	"edge":      true,
	"transport": true,
	"live":      true,
	"parallel":  true,
	"pipeline":  true,
	"loadgen":   true,
	"drive":     true,
}

// GoroLeak requires every go statement in a long-lived package to be tied
// to a shutdown path.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Directive: "detached",
	Doc: `flags fire-and-forget goroutines in long-lived packages

Every goroutine spawned in the serving stack must be joinable or drainable:
its body signals a sync.WaitGroup, receives from a done/context channel,
ranges over a close-drained work channel, or parks in a select. A body with
none of these (or a spawn target the analyzer cannot resolve within the
package) is fire-and-forget and is flagged. Goroutines that genuinely need
no shutdown path must be annotated //edgeis:detached <reason>.`,
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if !longLivedPkgs[pass.PkgBase()] {
		return nil
	}
	decls := indexFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, desc := goBody(pass, g, decls)
			if body == nil {
				pass.Reportf(g.Go,
					"goroutine target %s is not resolvable in this package; tie the spawn to a shutdown path or annotate //edgeis:detached <reason>",
					desc)
				return true
			}
			if !hasShutdownSignal(pass, body) {
				pass.Reportf(g.Go,
					"fire-and-forget goroutine %s: no WaitGroup.Done, done-channel receive, drained range, or select ties it to shutdown; annotate //edgeis:detached <reason> if intended",
					desc)
			}
			return true
		})
	}
	return nil
}

// indexFuncDecls maps the package's function objects to their declarations
// for one-level spawn-target resolution (go s.worker(...) checks worker's
// body).
func indexFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if d, ok := decl.(*ast.FuncDecl); ok && d.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
					decls[obj] = d
				}
			}
		}
	}
	return decls
}

// goBody resolves the body the go statement will run: a function literal's
// own body, or (one level deep) the declaration of a same-package function
// or method. desc names the target for diagnostics.
func goBody(pass *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) (*ast.BlockStmt, string) {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, "func literal"
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			if d := decls[fn]; d != nil {
				return d.Body, fn.Name()
			}
			return nil, fn.Name()
		}
		return nil, fun.Name
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if d := decls[fn]; d != nil {
				return d.Body, fn.Name()
			}
			return nil, fn.Name()
		}
		return nil, fun.Sel.Name
	}
	return nil, "expression"
}

// hasShutdownSignal reports whether body contains any of the accepted
// lifetime ties: a WaitGroup.Done call, a channel receive (done channels
// and ctx.Done() both appear as <-), a range over a channel (close-drained
// worker pattern), or a select statement.
func hasShutdownSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isSyncMethod(pass, sel, "WaitGroup") {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}
