// Package lint is edgeis's custom static-analysis suite. It enforces the
// determinism and concurrency invariants the pipeline's paper-fidelity
// claims rest on: no nondeterministic map iteration in seed-pinned code,
// no wall-clock reads where virtual time must be used, no global math/rand
// state shared across experiment arms, no exact float equality in
// scheduler/geometry ordering code, lock discipline and goroutine-lifetime
// rules in the serving stack, and the no-silent-loss conservation law
// (accounting counters only move through their audited mutators).
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic, analysistest-style fixtures) but is built on
// the standard library alone — go/ast, go/types, and export data obtained
// from `go list -export` — so the suite works in hermetic builds with no
// module-network access. If x/tools ever lands in the module graph the
// analyzers port to real analysis.Analyzer values almost mechanically.
//
// # Suppression directives
//
// A finding is suppressed by an //edgeis:<name> comment on the flagged line
// or the line directly above it. Every directive must carry a reason:
//
//	//edgeis:ordered   <why iteration order cannot leak into output>
//	//edgeis:wallclock <why real time is required here>
//	//edgeis:globalrand <why shared global rand state is safe>
//	//edgeis:floateq   <why exact float equality is intended>
//	//edgeis:lockdance <why this manual unlock under a pending defer is safe>
//	//edgeis:lockheld  <why blocking while holding this mutex is safe>
//	//edgeis:detached  <why this goroutine needs no shutdown path>
//	//edgeis:wgadd     <why Add inside the goroutine cannot race Wait>
//	//edgeis:counter   <why this counter write may bypass the mutators>
//
// Unknown //edgeis: directives and directives without a reason are
// themselves reported. So is a well-formed directive that no longer
// suppresses any finding of its owning analyzer: when the code a
// suppression excused moves or gets fixed, the stale annotation is flagged
// instead of rotting into misleading documentation.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is the stdlib-only analogue
// of analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Directive is the //edgeis:<Directive> suppression name honoured by
	// this analyzer, or "" if findings cannot be suppressed.
	Directive string
	// Run reports findings for one package via pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is a single finding, positioned in pass.Fset.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass holds one type-checked package being analyzed, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed sources of the package under analysis
	// (test files are excluded by the loader).
	Files []*ast.File
	// Pkg is the type-checked package and PkgPath its import path. In
	// fixture tests PkgPath is the fixture directory name, so analyzers
	// must scope themselves by the path's base element.
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diagnostics *[]Diagnostic
	directives  map[*ast.File][]*directive
}

// Reportf records a finding at pos unless a matching suppression directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Analyzer.Directive != "" && p.suppressed(pos, p.Analyzer.Directive) {
		return
	}
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last element of the package path, the unit analyzers
// use for scoping (so fixtures named like real packages scope identically).
func (p *Pass) PkgBase() string { return path.Base(p.PkgPath) }

// directive is one parsed //edgeis:<name> comment. used records whether it
// suppressed at least one finding in this Run, feeding the stale-suppression
// audit; the entries are shared by pointer across the per-analyzer Pass
// copies so usage accumulates over the whole suite.
type directive struct {
	line   int
	name   string
	reason string
	pos    token.Pos
	used   bool
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//edgeis:"

// knownDirectives is the full suppression grammar; one entry per analyzer.
var knownDirectives = map[string]bool{
	"ordered":    true,
	"wallclock":  true,
	"globalrand": true,
	"floateq":    true,
	"lockdance":  true,
	"lockheld":   true,
	"detached":   true,
	"wgadd":      true,
	"counter":    true,
}

// parseDirectives extracts //edgeis: directives from a file's comments.
func parseDirectives(fset *token.FileSet, file *ast.File) []*directive {
	var ds []*directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, DirectivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			ds = append(ds, &directive{
				line:   fset.Position(c.Pos()).Line,
				name:   name,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
			})
		}
	}
	return ds
}

// suppressed reports whether a directive named name covers the line of pos:
// the directive sits on the same line (trailing comment) or the line above.
func (p *Pass) suppressed(pos token.Pos, name string) bool {
	file := p.fileFor(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.directives[file] {
		if d.name == name && d.reason != "" && (d.line == line || d.line == line-1) {
			d.used = true
			return true
		}
	}
	return false
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// checkDirectiveWellFormed reports malformed //edgeis: comments: unknown
// directive names and directives missing the mandatory reason. It runs once
// per package, independent of the analyzer list.
func checkDirectiveWellFormed(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range pass.directives[f] {
			switch {
			case !knownDirectives[d.name]:
				known := make([]string, 0, len(knownDirectives))
				for k := range knownDirectives {
					known = append(known, k)
				}
				sort.Strings(known)
				*pass.diagnostics = append(*pass.diagnostics, Diagnostic{
					Pos:      d.pos,
					Analyzer: "directive",
					Message: fmt.Sprintf("unknown suppression directive %q (known: %s)",
						DirectivePrefix+d.name, strings.Join(known, ", ")),
				})
			case d.reason == "":
				*pass.diagnostics = append(*pass.diagnostics, Diagnostic{
					Pos:      d.pos,
					Analyzer: "directive",
					Message:  fmt.Sprintf("suppression %s%s needs a reason: %s%s <why this is safe>", DirectivePrefix, d.name, DirectivePrefix, d.name),
				})
			}
		}
	}
}

// auditStaleDirectives reports well-formed suppressions that no longer
// suppress anything: a directive whose owning analyzer ran in this pass but
// which matched no finding marks code that has moved or been fixed, and a
// stale annotation rots into misleading documentation. Directives whose
// owner was not in the analyzer list are left alone, so a partial -run
// cannot flag the other analyzers' annotations.
func auditStaleDirectives(pass *Pass, analyzers []*Analyzer) {
	owner := map[string]string{}
	for _, a := range analyzers {
		if a.Directive != "" {
			owner[a.Directive] = a.Name
		}
	}
	for _, f := range pass.Files {
		for _, d := range pass.directives[f] {
			name, ran := owner[d.name]
			if !ran || d.used || d.reason == "" || !knownDirectives[d.name] {
				continue
			}
			*pass.diagnostics = append(*pass.diagnostics, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message: fmt.Sprintf("suppression %s%s no longer suppresses any %s finding; remove the stale annotation",
					DirectivePrefix, d.name, name),
			})
		}
	}
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, WallTime, SeedRand, FloatEq, LockBalance, LockBlock, GoroLeak, WgAdd, Conservation}
}

// Run type-checks nothing itself; it applies the given analyzers to an
// already type-checked package and returns the findings sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, pkgPath string, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	directives := make(map[*ast.File][]*directive, len(files))
	for _, f := range files {
		directives[f] = parseDirectives(fset, f)
	}
	base := &Pass{
		Fset:        fset,
		Files:       files,
		Pkg:         pkg,
		PkgPath:     pkgPath,
		TypesInfo:   info,
		diagnostics: &diags,
		directives:  directives,
	}
	checkDirectiveWellFormed(base)
	for _, a := range analyzers {
		pass := *base
		pass.Analyzer = a
		if err := a.Run(&pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	auditStaleDirectives(base, analyzers)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
