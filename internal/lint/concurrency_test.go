package lint_test

import (
	"testing"

	"edgeis/internal/lint"
	"edgeis/internal/lint/analysistest"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.LockBalance, "lockbal")
}

func TestLockBlock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.LockBlock, "lockblk")
}

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.GoroLeak, "edge", "oneshot")
}

func TestWgAdd(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.WgAdd, "wgfix")
}

func TestConservation(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Conservation, "loadgen", "metrics", "fleet")
}
