package lint_test

import (
	"testing"

	"edgeis/internal/lint"
	"edgeis/internal/lint/analysistest"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.WallTime, "netsim", "core", "transport")
}
