package lint_test

import (
	"testing"

	"edgeis/internal/lint"
	"edgeis/internal/lint/analysistest"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.FloatEq, "pipeline", "codec")
}
