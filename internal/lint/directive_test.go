package lint_test

import (
	"strings"
	"testing"

	"edgeis/internal/lint"
)

// checkSource type-checks one in-memory file as package pkgPath and runs
// the full analyzer suite over it.
func checkSource(t *testing.T, pkgPath, src string) []lint.Diagnostic {
	t.Helper()
	pkg, err := lint.TypeCheck(pkgPath, []string{"fix.go"}, map[string][]byte{"fix.go": []byte(src)})
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	diags, err := lint.CheckPackage(pkg, lint.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	return diags
}

func messages(diags []lint.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestUnknownDirectiveReported(t *testing.T) {
	diags := checkSource(t, "vo", `package vo

//edgeis:bogus this directive does not exist
func f() {}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown suppression directive "//edgeis:bogus"`) {
		t.Fatalf("want one unknown-directive finding, got %q", messages(diags))
	}
}

func TestDirectiveWithoutReasonReported(t *testing.T) {
	diags := checkSource(t, "vo", `package vo

func f(m map[string]int) {
	//edgeis:ordered
	for k := range m {
		g(k)
	}
}

func g(string) {}
`)
	var gotReason, gotMapiter bool
	for _, d := range diags {
		if d.Analyzer == "directive" && strings.Contains(d.Message, "needs a reason") {
			gotReason = true
		}
		// A reasonless directive must NOT suppress the underlying finding.
		if d.Analyzer == "mapiter" {
			gotMapiter = true
		}
	}
	if !gotReason || !gotMapiter || len(diags) != 2 {
		t.Fatalf("want needs-a-reason + unsuppressed mapiter findings, got %q", messages(diags))
	}
}

func TestReasonedDirectiveSuppresses(t *testing.T) {
	diags := checkSource(t, "vo", `package vo

func f(m map[string]int) {
	//edgeis:ordered g is an order-insensitive sink
	for k := range m {
		g(k)
	}
}

func g(string) {}
`)
	if len(diags) != 0 {
		t.Fatalf("want no findings, got %q", messages(diags))
	}
}

func TestTrailingDirectiveSuppresses(t *testing.T) {
	diags := checkSource(t, "pipeline", `package pipeline

func isNaN(x float64) bool {
	return x != x //edgeis:floateq standard NaN self-test
}
`)
	if len(diags) != 0 {
		t.Fatalf("want no findings, got %q", messages(diags))
	}
}

func TestDirectiveDoesNotLeakAcrossAnalyzers(t *testing.T) {
	// A wallclock directive must not suppress a mapiter finding — and since
	// it then suppresses nothing at all, the stale-suppression audit flags
	// the directive itself.
	diags := checkSource(t, "vo", `package vo

func f(m map[string]int) {
	//edgeis:wallclock wrong directive for this finding
	for k := range m {
		g(k)
	}
}

func g(string) {}
`)
	var gotMapiter, gotStale bool
	for _, d := range diags {
		if d.Analyzer == "mapiter" {
			gotMapiter = true
		}
		if d.Analyzer == "directive" && strings.Contains(d.Message, "no longer suppresses any walltime finding") {
			gotStale = true
		}
	}
	if !gotMapiter || !gotStale || len(diags) != 2 {
		t.Fatalf("want unsuppressed mapiter + stale-directive findings, got %q", messages(diags))
	}
}

func TestStaleDirectiveAudit(t *testing.T) {
	// A reasoned directive whose finding has since been fixed is reported
	// by the audit instead of rotting into misleading documentation.
	diags := checkSource(t, "vo", `package vo

//edgeis:ordered output is sorted before use
func f() {}
`)
	if len(diags) != 1 || diags[0].Analyzer != "directive" ||
		!strings.Contains(diags[0].Message, "no longer suppresses any mapiter finding") {
		t.Fatalf("want one stale-directive finding, got %q", messages(diags))
	}
}

func TestStaleAuditScopedToRunAnalyzers(t *testing.T) {
	// When only mapiter runs, an unused wallclock directive is NOT audited:
	// its owning analyzer never had the chance to use it.
	pkg, err := lint.TypeCheck("vo", []string{"fix.go"}, map[string][]byte{"fix.go": []byte(`package vo

//edgeis:wallclock frame pacing is genuinely wall-clock here
func f() {}
`)})
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	diags, err := lint.CheckPackage(pkg, []*lint.Analyzer{lint.MapIter})
	if err != nil {
		t.Fatalf("running mapiter: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("want no findings from a partial run, got %q", messages(diags))
	}
}
