package lint_test

import (
	"testing"

	"edgeis/internal/lint"
	"edgeis/internal/lint/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.MapIter, "vo", "transport")
}
