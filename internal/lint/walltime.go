package lint

import (
	"go/ast"
	"path/filepath"
)

// wallClockPkgs are the packages that legitimately run on real goroutines
// against real sockets and timers; everything else models time with the
// simulator's virtual clock and must not read the wall clock. backendtest
// is test infrastructure: it polls real TCP/loopback backends from the
// conformance suite, so its deadlines are genuinely wall-clock. edge is the
// serving layer behind transport: its scheduler measures real queue-wait and
// session uptimes for multi-tenant serving stats. drive is the load
// harness's wall-clock half: it paces synthetic fleets against the real
// scheduler and real sockets, while its sibling loadgen stays on the
// virtual clock.
var wallClockPkgs = map[string]bool{
	"transport":   true,
	"live":        true,
	"parallel":    true,
	"backendtest": true,
	"edge":        true,
	"drive":       true,
}

// wallTimeFuncs are the time-package entry points that observe or consume
// real elapsed time, including the timer constructors (the gather-window
// batch former made time.After-style waits an easy habit to pick up; in a
// sim-clock package they belong on the virtual clock like everything else).
var wallTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// WallTime flags time.Now/Since/Until/Sleep and the timer constructors
// (After, NewTimer, NewTicker, Tick) in sim-clock packages, where virtual
// time must be used so runs are seed-reproducible and latency figures come
// from the modeled clock, not host scheduling jitter.
var WallTime = &Analyzer{
	Name:      "walltime",
	Directive: "wallclock",
	Doc: `flags wall-clock reads in virtual-time packages

The sim pipeline advances a virtual clock; reading the host clock there
makes latency figures depend on machine load and breaks seed
reproducibility. Real-time packages (transport, edge, live, parallel) and
the core/stages.go profiling hooks are exempt, as are tests. Other genuine
wall-clock sites must be annotated //edgeis:wallclock <reason>.`,
	Run: runWallTime,
}

func runWallTime(pass *Pass) error {
	if wallClockPkgs[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		// core/stages.go hosts the StageTimer profiling hooks, which time
		// real work on purpose and feed no simulated quantity.
		if pass.PkgBase() == "core" && filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "stages.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || !isPkgName(pass, pkgID, "time") || !wallTimeFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in sim-clock package %q: use the virtual clock, or annotate //edgeis:wallclock <reason>",
				sel.Sel.Name, pass.PkgBase())
			return true
		})
	}
	return nil
}
