package lint

import (
	"go/ast"
	"go/types"
)

// seedRandAllowed are the math/rand package-level names that construct or
// name generator state rather than consuming the shared global source.
var seedRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true, // type, in *rand.Rand value declarations
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// SeedRand flags use of math/rand's global generator (rand.Intn,
// rand.Float64, rand.Seed, rand.Shuffle, ...) anywhere in the tree. The
// global source is shared process-wide, so two experiment arms running
// under the parallel runner would interleave draws and silently couple:
// each component must own an injected *rand.Rand derived from its seed.
var SeedRand = &Analyzer{
	Name:      "seedrand",
	Directive: "globalrand",
	Doc: `flags math/rand global-state use

rand.Intn and friends draw from one process-global source. Under the
parallel experiment runner that source is shared across arms, so draws
interleave nondeterministically and seeds stop pinning runs. Construct
rand.New(rand.NewSource(seed)) and thread the *rand.Rand instead, or
annotate //edgeis:globalrand <reason> for a site that is provably safe.`,
	Run: runSeedRand,
}

func runSeedRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			p := pn.Imported().Path()
			if p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if seedRandAllowed[sel.Sel.Name] {
				return true
			}
			// Only function/value references touch global state; type names
			// other than the allowed ones don't exist in math/rand today,
			// but be precise anyway.
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s uses math/rand's process-global source, which couples parallel experiment arms; thread an injected *rand.Rand (or annotate //edgeis:globalrand <reason>)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
