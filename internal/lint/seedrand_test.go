package lint_test

import (
	"testing"

	"edgeis/internal/lint"
	"edgeis/internal/lint/analysistest"
)

func TestSeedRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.SeedRand, "scene")
}
