package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// exportLookup resolves import paths to compiler export-data files. It is
// seeded from a `go list -deps -export` run and falls back to invoking
// `go list -export` for stray paths (used by the fixture harness, whose
// stdlib imports are not known up front).
type exportLookup struct {
	mu      sync.Mutex
	exports map[string]string
}

func (e *exportLookup) lookup(ipath string) (io.ReadCloser, error) {
	e.mu.Lock()
	f, ok := e.exports[ipath]
	e.mu.Unlock()
	if !ok {
		pkgs, err := goList(nil, "-export", ipath)
		if err != nil || len(pkgs) != 1 || pkgs[0].Export == "" {
			return nil, fmt.Errorf("no export data for %q: %v", ipath, err)
		}
		f = pkgs[0].Export
		e.mu.Lock()
		e.exports[ipath] = f
		e.mu.Unlock()
	}
	return os.Open(f)
}

func (e *exportLookup) add(ipath, file string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if file != "" {
		e.exports[ipath] = file
	}
}

// sharedLookup caches export data across Load calls and fixture runs in one
// process, so repeated `go list` invocations for stdlib imports are avoided.
var sharedLookup = &exportLookup{exports: map[string]string{}}

// goList runs `go list` in dir ("" = current directory) and decodes the
// JSON package stream.
func goList(extraEnv []string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error"}, args...)...)
	cmd.Env = append(os.Environ(), extraEnv...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load resolves the given `go list` patterns (e.g. "./..."), type-checks
// every matched non-test package from source, and returns them sorted by
// import path. Dependencies are imported from compiler export data, so no
// network or GOPATH layout is required — only a working `go` command.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(nil, append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		sharedLookup.add(p.ImportPath, p.Export)
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := TypeCheck(t.ImportPath, files, nil)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

// TypeCheck parses and type-checks one package from the given source files.
// src maps a filename to its content for in-memory sources (may be nil, in
// which case files are read from disk). Imports resolve via export data.
func TypeCheck(pkgPath string, filenames []string, src map[string][]byte) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		var content any
		if src != nil {
			content = src[name]
		}
		f, err := parser.ParseFile(fset, name, content, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", sharedLookup.lookup),
		Error:    func(error) {}, // collect everything; fail on the first below
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// CheckPackage runs the analyzers over one loaded package.
func CheckPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Path, pkg.Info, analyzers)
}
