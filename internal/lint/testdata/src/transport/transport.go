// Fixture: package "transport" is outside the deterministic set (mapiter)
// and inside the real-time set (walltime), so nothing here is flagged.
package transport

import "time"

func sink(string, int) {}

func visitAll(m map[string]int) {
	for k, v := range m {
		sink(k, v)
	}
}

func stamp() time.Time { return time.Now() }

func wait() { time.Sleep(time.Millisecond) }
