// Fixture: package "fleet" joined the conservation scope with the
// multi-edge sharding work — the client-side identity
// sent == delivered + rejected + shed + migrated + connLost is only
// auditable if the loss classes move through FleetClient's registered
// mutators (foldLocked settles a retired connection, Stats overlays the
// live one).
package fleet

type FleetClient struct {
	rejected int
	shed     int
	migrated int
	connLost int
}

type Stats struct {
	Rejected int
	Migrated int
	ConnLost int
}

// foldLocked is registered: the one place unresolved frames are classified.
func (fc *FleetClient) foldLocked(migrated bool) {
	if migrated {
		fc.migrated += 2
	} else {
		fc.connLost += 2
	}
	fc.rejected++
	fc.shed++
}

// Stats is registered: it overlays live-connection counters on a snapshot.
func (fc *FleetClient) Stats() Stats {
	st := Stats{Rejected: fc.rejected, Migrated: fc.migrated, ConnLost: fc.connLost}
	st.Rejected += fc.liveRejected()
	return st
}

func (fc *FleetClient) liveRejected() int { return 0 }

// Flagged: a failover path classifying losses outside the mutators.
func (fc *FleetClient) retire() {
	fc.migrated++ // want "write to accounting counter migrated"
	fc.connLost++ // want "write to accounting counter connLost"
}

// Guard: same-name aggregation between snapshots stays exempt.
func merge(dst, src *Stats) {
	dst.Migrated += src.Migrated
	dst.ConnLost = src.ConnLost
}
