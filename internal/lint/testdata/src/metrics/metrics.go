// Fixture: package "metrics" is outside the conservation scope; its
// tallies are free-form and nothing here is flagged.
package metrics

type hist struct {
	served  int
	dropped int
}

func observe(h *hist) {
	h.served++
	h.dropped++
}
