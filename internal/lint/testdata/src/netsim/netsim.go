// Fixture for the walltime analyzer: netsim models time with the virtual
// clock, so wall-clock reads are flagged unless annotated.
package netsim

import "time"

func now() time.Time {
	return time.Now() // want "time.Now in sim-clock package \"netsim\""
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in sim-clock package"
}

func pause() {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep in sim-clock package"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until in sim-clock package"
}

// Timer constructors consume real elapsed time just like Sleep does; a
// gather window in a sim-clock package must be modeled on the virtual clock.
func gatherWindow() <-chan time.Time {
	return time.After(tick) // want "time.After in sim-clock package"
}

func armTimer() *time.Timer {
	return time.NewTimer(tick) // want "time.NewTimer in sim-clock package"
}

func pollTicker() *time.Ticker {
	return time.NewTicker(tick) // want "time.NewTicker in sim-clock package"
}

func legacyTick() <-chan time.Time {
	return time.Tick(tick) // want "time.Tick in sim-clock package"
}

// Constructing durations and formatting timestamps is fine: only observing
// or consuming real elapsed time is flagged.
func format(t time.Time) string {
	return t.Format(time.RFC3339)
}

const tick = 5 * time.Millisecond

// A reviewed real-time site can be annotated.
func profiled() time.Time {
	//edgeis:wallclock one-shot profiling log line, never feeds the sim clock
	return time.Now()
}
