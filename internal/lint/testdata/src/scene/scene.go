// Fixture for the seedrand analyzer: global math/rand state couples
// parallel experiment arms; injected *rand.Rand is the sanctioned form.
package scene

import "math/rand"

func globalDraw() int {
	return rand.Intn(10) // want "rand.Intn uses math/rand's process-global source"
}

func globalFloat() float64 {
	return rand.Float64() // want "rand.Float64 uses math/rand's process-global source"
}

func globalSeed() {
	rand.Seed(42) // want "rand.Seed uses math/rand's process-global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle uses math/rand's process-global source"
}

// Constructing a seeded generator is the sanctioned pattern — clean.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Drawing from an injected generator is clean.
func draw(rng *rand.Rand) int {
	return rng.Intn(10)
}

// Naming the types is clean.
var _ rand.Source = nil

// A reviewed global site can be annotated.
func annotated() int {
	//edgeis:globalrand one-shot CLI jitter, never runs under the parallel runner
	return rand.Intn(3)
}
