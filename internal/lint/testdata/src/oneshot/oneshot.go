// Fixture: package "oneshot" is outside goroleak's long-lived set — a
// short-lived tool may fire and forget, so nothing here is flagged.
package oneshot

func work() {}

func fireAndForget() {
	go work()
	go func() { work() }()
}
