// Fixture for the mapiter analyzer: package base name "vo" is in the
// deterministic set, so order-sensitive map ranges must be flagged.
package vo

import "sort"

func sink(string, int) {}

// Appending keys without a following sort leaks map order into the slice.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m in deterministic package \"vo\""
		out = append(out, k)
	}
	return out
}

// Calling an arbitrary function per entry is order-sensitive.
func visit(m map[string]int) {
	for k, v := range m { // want "iteration order is randomized"
		sink(k, v)
	}
}

// Writing an inverted map indexed by the VALUE collides when two keys share
// a value, so the surviving entry depends on visit order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // want "range over map"
		out[v] = k
	}
	return out
}

// The canonical PR-2 fix: collect keys, then sort — clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Collect-then-sort over pairs is clean too.
func sortedByValue(m map[string]int) []string {
	type kv struct {
		k string
		v int
	}
	var pairs []kv
	for k, v := range m {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.k
	}
	return out
}

// Commutative accumulation is order-insensitive — clean.
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Counting entries is order-insensitive — clean.
func count(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Per-KEY writes into another map commute — clean.
func double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Deleting per entry commutes — clean.
func clear2(m map[string]int, dead map[string]bool) {
	for k := range dead {
		delete(m, k)
	}
}

// A reviewed site can be suppressed with a reasoned directive.
func suppressed(m map[string]int) {
	//edgeis:ordered sink is a commutative metrics counter, order cannot leak
	for k, v := range m {
		sink(k, v)
	}
}

// Range over a slice is never flagged.
func slices(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Filtered counting under an if is still commutative — clean.
func countBig(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 10 {
			n++
		}
	}
	return n
}

// Filtered collect-then-sort is the PR-2 idiom with a guard — clean.
func filteredSorted(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Filtered collect WITHOUT the sort still leaks map order — flagged.
func filteredUnsorted(m map[string]int) []string {
	var keys []string
	for k, v := range m { // want "range over map"
		if v > 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// Building a set writes the same constant on collision — clean.
func keySet(m map[string]int) map[int]bool {
	seen := make(map[int]bool)
	for _, v := range m {
		if v > 0 {
			seen[v] = true
		}
	}
	return seen
}

// Writing DIFFERENT constants to one map makes collisions order-dependent —
// flagged.
func twoConstants(m map[string]int) map[int]int {
	out := make(map[int]int)
	for k, v := range m { // want "range over map"
		if len(k) > 3 {
			out[v] = 1
		} else {
			out[v] = 2
		}
	}
	return out
}

// Early break depends on which entry comes first — flagged.
func firstMatch(m map[string]int) int {
	found := 0
	for _, v := range m { // want "range over map"
		if v > 0 {
			found = v
			break
		}
	}
	return found
}
