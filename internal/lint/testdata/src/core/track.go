// Fixture: any other file in package core is sim-clock code.
package core

import "time"

func trackNow() time.Time {
	return time.Now() // want "time.Now in sim-clock package \"core\""
}
