// Fixture: core/stages.go is the one core file exempt from walltime — it
// hosts the real-time StageTimer profiling hooks.
package core

import "time"

func stageStart() time.Time { return time.Now() }

func stageElapsed(t0 time.Time) time.Duration { return time.Since(t0) }
