// Fixture for the lockbalance analyzer: every Lock must reach an Unlock on
// all paths, branches must merge with the same held set, loops must not
// compound lock state, and the unlock-relock dance needs a reviewed
// annotation.
package lockbal

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Flagged: the early-return arm leaves mu held forever.
func leakOnReturn(b *box, bail bool) {
	b.mu.Lock()
	if bail {
		return // want "still held at this return"
	}
	b.mu.Unlock()
}

// Flagged: one arm unlocks, the other does not, and both fall through.
func branchImbalance(b *box, flip bool) int {
	b.mu.Lock()
	if flip { // want "held on some paths but not others"
		b.mu.Unlock()
	}
	return b.n
}

// Flagged: a manual unlock while the deferred unlock is still pending is
// the unlock-relock dance — a double-unlock panic one refactor away.
func dance(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mu.Unlock() // want "unlock-relock dance"
	b.mu.Lock()
	return b.n
}

// Flagged: locking a mutex already held on this path self-deadlocks.
func doubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want "already held since line"
	b.mu.Unlock()
}

// Flagged: unlocking a mutex this path never locked.
func unlockUnheld(b *box) {
	b.mu.Unlock() // want "not held on this path"
}

// Flagged: each iteration locks once more than it unlocks.
func loopImbalance(b *box, xs []int) {
	for range xs { // want "changes held state across one loop iteration"
		b.mu.Lock()
	}
}

// Suppressed: a reviewed gather-window style dance carries its reason.
func reviewedDance(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	//edgeis:lockdance reviewed: the window release re-locks on the only path that reaches it
	b.mu.Unlock()
	b.mu.Lock()
	return b.n
}

// Guard: the canonical defer-based critical section.
func deferBalanced(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Guard: the pool pattern — unlock-and-return inside a loop branch plus an
// unlock after the loop covers every path exactly once.
func loopEarlyReturn(b *box, xs []int) int {
	b.mu.Lock()
	for _, x := range xs {
		if x > 0 {
			b.mu.Unlock()
			return x
		}
	}
	b.mu.Unlock()
	return 0
}

// Guard: the reader and writer sides of an RWMutex balance independently.
func rwSides(b *box) int {
	b.rw.RLock()
	n := b.n
	b.rw.RUnlock()
	b.rw.Lock()
	b.n = n + 1
	b.rw.Unlock()
	return n
}

// Guard: a goroutine body starts with no inherited critical section and
// balances on its own.
func spawn(b *box) {
	b.mu.Lock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
	b.mu.Unlock()
}

// Guard: back-to-back manual sections are balanced — no deferred unlock is
// pending, so no dance.
func manualSections(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.mu.Lock()
	b.n--
	b.mu.Unlock()
}

// Guard: a deferred closure that only unlocks counts as the deferred
// unlock for the return check.
func deferClosure(b *box) int {
	b.mu.Lock()
	defer func() {
		b.n++
		b.mu.Unlock()
	}()
	return b.n
}
