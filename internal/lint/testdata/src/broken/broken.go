// Fixture: intentionally fails type-checking, exercising the loader's
// error path (testdata is invisible to ./... patterns, so the tree still
// builds).
package broken

func f() int { return undefinedIdent }
