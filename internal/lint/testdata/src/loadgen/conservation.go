// Fixture: package "loadgen" is inside the conservation scope, so counter
// fields only move through the audited mutator set.
package loadgen

type sim struct {
	served   int
	offered  int
	rejected int
	// keyframes/warped are the skip-compute partition of served.
	keyframes int
	warped    int
	// migrated is the fleet-failover loss class.
	migrated int
	// dropped here is a per-frame flag, not a counter: bools are exempt.
	dropped bool
}

type SLO struct {
	Served  int
	Dropped int
}

// countServed and countOffered are registered mutators: their direct
// writes are the audited set.

func (s *sim) countServed() { s.served++ }

func (s *sim) countOffered() { s.offered++ }

// countKeyframes is a registered mutator for the skip-compute partition.
func (s *sim) countKeyframes(n int) { s.keyframes += n }

// countMigrated is the registered mutator for the fleet-failover loss class.
func (s *sim) countMigrated(n int) { s.migrated += n }

// Flagged: a counter write outside the mutator set.
func admit(s *sim) {
	s.rejected++ // want "write to accounting counter rejected"
}

// Flagged: assignment forms are writes too.
func reset(s *sim) {
	s.served = 0 // want "write to accounting counter served"
}

// Flagged: the skip-compute partition counters are conserved quantities.
func warpDirect(s *sim) {
	s.warped++ // want "write to accounting counter warped"
}

// Suppressed: a reviewed direct write carries its reason.
func reviewedWrite(s *sim) {
	//edgeis:counter test-only reset, reviewed with the accounting audit
	s.served = 0
}

// Guard: moving counters through the mutators is the sanctioned path.
func serve(s *sim) {
	s.countServed()
	s.countOffered()
	s.countKeyframes(1)
}

// Guard: same-name aggregation moves counts between scopes without
// creating or destroying any.
func fold(dst, src *SLO) {
	dst.Served += src.Served
	dst.Dropped = src.Dropped
}

// Guard: local tallies are loop bookkeeping, not conserved state.
func tally(xs []int) int {
	served := 0
	for range xs {
		served++
	}
	return served
}

// Guard: boolean flags sharing a counter name are not counters.
func mark(s *sim) {
	s.dropped = true
}

// Flagged: migration losses (the fleet extension of the law) must route
// through the audited mutator too.
func loseToKill(s *sim) {
	s.migrated++ // want "write to accounting counter migrated"
}

// Guard: the sanctioned migration path.
func migrate(s *sim) {
	s.countMigrated(3)
}
