// Fixture: package "edge" is in goroleak's long-lived set, so every
// goroutine must be tied to a shutdown path — WaitGroup, done channel,
// close-drained range, or a select with a shutdown case.
package edge

import (
	"sync"
	"time"
)

type pool struct {
	wg   sync.WaitGroup
	jobs chan int
	done chan struct{}
	n    int
}

func work() {}

// Flagged: fire-and-forget closure with no shutdown signal.
func detachedFunc() {
	go func() { // want "fire-and-forget goroutine func literal"
		work()
	}()
}

// Flagged: a resolvable spawn target with no shutdown signal in its body.
func spawnHelper() {
	go work() // want "fire-and-forget goroutine work"
}

// Flagged: a spawn target outside the package cannot be audited.
func spawnForeign() {
	go time.Sleep(0) // want "goroutine target Sleep is not resolvable in this package"
}

// Suppressed: a reviewed one-shot helper carries its reason.
func reviewedDetached() {
	//edgeis:detached one-shot startup probe, bounded by process lifetime
	go work()
}

// Guard: the WaitGroup-tied closure is joinable.
func tiedWg(p *pool) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// worker drains the close-drained jobs channel.
func (p *pool) worker() {
	for range p.jobs {
		p.n++
	}
}

// Guard: a method spawn resolves one level deep to the drained worker.
func tiedMethod(p *pool) {
	go p.worker()
}

// Guard: a done-channel receive ties the goroutine to shutdown.
func tiedDone(p *pool) {
	go func() {
		<-p.done
	}()
}

// Guard: a select-parked goroutine observes a shutdown case.
func tiedSelect(p *pool) {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case j := <-p.jobs:
				_ = j
			}
		}
	}()
}
