// Fixture: package "codec" is outside the floateq scheduler/geometry set,
// so float equality here is not flagged.
package codec

func quantMatch(a, b float64) bool { return a == b }
