// Fixture for the wgadd analyzer: WaitGroup.Add must happen-before the
// Wait that observes it, so Add inside the spawned goroutine is flagged —
// unless the group itself lives inside that goroutine.
package wgfix

import "sync"

type group struct {
	wg sync.WaitGroup
}

func work() {}

// Flagged: Add races a Wait that may already have returned.
func addInside(g *group) {
	go func() {
		g.wg.Add(1) // want "WaitGroup.Add on g.wg inside the goroutine"
		defer g.wg.Done()
		work()
	}()
	g.wg.Wait()
}

var fleet sync.WaitGroup

// Flagged: package-level groups race the same way.
func addInsideGlobal() {
	go func() {
		fleet.Add(1) // want "WaitGroup.Add on fleet inside the goroutine"
		defer fleet.Done()
		work()
	}()
	fleet.Wait()
}

// Suppressed: a reviewed exception carries its reason.
func reviewedAdd(g *group) {
	go func() {
		//edgeis:wgadd the spawner parks on a barrier that outlives this Add
		g.wg.Add(1)
		defer g.wg.Done()
		work()
	}()
}

// Guard: Add before the go statement is the correct pattern.
func addBefore(g *group) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		work()
	}()
	g.wg.Wait()
}

// Guard: a WaitGroup declared inside the goroutine is its own
// synchronization domain.
func localGroup() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() {
			defer inner.Done()
			work()
		}()
		inner.Wait()
	}()
}
