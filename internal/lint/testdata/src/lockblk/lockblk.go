// Fixture for the lockblock analyzer: no blocking operation — channel
// send/receive, select without default, net.Conn I/O (direct or one call
// away), Accelerator.Run, or a call into a lock-taking method — while a
// mutex is held.
package lockblk

import (
	"net"
	"sync"
)

type Accelerator interface {
	Run(x int) int
}

type srv struct {
	mu   sync.Mutex
	ch   chan int
	conn net.Conn
	acc  Accelerator
	n    int
}

// Flagged: a channel send inside the critical section can park the holder.
func sendHeld(s *srv) {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// Flagged: so can a receive.
func recvHeld(s *srv) int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while holding s.mu"
	s.mu.Unlock()
	return v
}

// Flagged: a select with no default case blocks until a peer is ready.
func selectHeld(s *srv) {
	s.mu.Lock()
	select { // want "select without a default case while holding s.mu"
	case v := <-s.ch:
		s.n = v
	}
	s.mu.Unlock()
}

// Flagged: socket I/O under the lock stalls every peer behind one conn.
func connWriteHeld(s *srv, buf []byte) {
	s.mu.Lock()
	s.conn.Write(buf) // want "net.Conn I/O while holding s.mu"
	s.mu.Unlock()
}

// write wraps the socket write, putting it one call away.
func write(c net.Conn, buf []byte) error {
	_, err := c.Write(buf)
	return err
}

// Flagged: socket I/O one call away is still socket I/O under the lock.
func connWriteViaHelper(s *srv, buf []byte) {
	s.mu.Lock()
	write(s.conn, buf) // want "net.Conn I/O via write while holding s.mu"
	s.mu.Unlock()
}

// Flagged: accelerator inference is the latency budget itself.
func runHeld(s *srv, x int) int {
	s.mu.Lock()
	v := s.acc.Run(x) // want "Accelerator.Run while holding s.mu"
	s.mu.Unlock()
	return v
}

// lockedTouch takes the lock itself: calling it with the lock already held
// is a self-deadlock.
func lockedTouch(s *srv) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// Flagged: a call into a lock-taking function while the lock is held.
func nestedCall(s *srv) {
	s.mu.Lock()
	lockedTouch(s) // want "call into lockedTouch, which takes a lock"
	s.mu.Unlock()
}

// Suppressed: a buffered single-sender completion channel cannot block.
func reviewedSend(s *srv) {
	s.mu.Lock()
	//edgeis:lockheld ch is buffered and this is its only sender
	s.ch <- 1
	s.mu.Unlock()
}

// Guard: a select with a default case never parks.
func selectDefault(s *srv) {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
		s.n++
	}
	s.mu.Unlock()
}

// Guard: the blocking operation happens after the unlock.
func sendAfterUnlock(s *srv) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
}

// Guard: sync.Cond.Wait releases the mutex while parked; waiting on a
// condition under its own lock is the intended use.
func condWait(s *srv, c *sync.Cond) {
	s.mu.Lock()
	for s.n == 0 {
		c.Wait()
	}
	s.mu.Unlock()
}

// Guard: deferred calls run after the deferred unlock below them on the
// defer stack, so deferring a lock-taking call is not a lock-held call.
func deferNested(s *srv) {
	s.mu.Lock()
	defer lockedTouch(s)
	defer s.mu.Unlock()
	s.n++
}
