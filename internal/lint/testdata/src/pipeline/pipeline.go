// Fixture for the floateq analyzer: package "pipeline" is scheduler code,
// where exact float equality decided the PR-2 event-queue tie-breaks.
package pipeline

import "math"

func tie(a, b float64) bool {
	return a == b // want "== on float operands in package \"pipeline\""
}

func tie32(a, b float32) bool {
	return a != b // want "!= on float operands"
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want "== on float operands"
}

// Exact-zero guards before division are deliberate and exempt.
func zeroGuard(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

func nonZero(x float64) bool {
	return x != 0.0
}

// Integer equality is not flagged.
func intEq(a, b int) bool { return a == b }

// Epsilon comparison is the sanctioned form.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// NaN self-test is a classic deliberate float equality.
func isNaN(x float64) bool {
	//edgeis:floateq x != x is the standard NaN test, rounding-independent
	return x != x
}
