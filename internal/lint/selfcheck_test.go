package lint_test

import (
	"testing"

	"edgeis/internal/lint"
)

// TestTreeIsClean runs the full analyzer suite over the whole module and
// requires zero findings: the analyzers ship with the tree clean, and any
// regression (a new unsorted map range in vo, a wall-clock read in the sim
// path, a global rand draw) fails the ordinary test suite, not just lint.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode")
	}
	pkgs, err := lint.Load("edgeis/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d); loader broken?", len(pkgs))
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := lint.CheckPackage(pkg, lint.All())
		if err != nil {
			t.Fatalf("checking %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			total++
		}
	}
	if total > 0 {
		t.Fatalf("%d findings; the tree must lint clean (fix or annotate with //edgeis:* <reason>)", total)
	}
}
