package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// conservationPkgs are the packages whose counters the no-silent-loss law
// (offered == served + rejected + shed + dropped) is reconciled across.
var conservationPkgs = map[string]bool{
	"edge":      true,
	"transport": true,
	"pipeline":  true,
	"live":      true,
	"loadgen":   true,
	"drive":     true,
	"fleet":     true,
}

// counterFields are the accounting counter field names (matched
// case-insensitively) the conservation law sums over. Throughput tallies
// like sent/Submitted are not conserved quantities and stay unconstrained.
var counterFields = map[string]bool{
	"served":           true,
	"offered":          true,
	"rejected":         true,
	"shed":             true,
	"dropped":          true,
	"cancelled":        true,
	"discarded":        true,
	"droppedoffloads":  true,
	"discardedresults": true,
	// The skip-compute partition counters (keyframes + warped == served)
	// are conserved the same way: served frames split into exactly one of
	// the two classes, so their writes must be auditable too.
	"keyframes": true,
	"warped":    true,
	// The fleet-failover loss classes: frames lost in flight to a replica
	// kill (migrated) and frames unresolved when the last connection died
	// (connlost). Both sit on the loss side of the extended law
	// offered == served + rejected + shed + dropped + migrated.
	"migrated":         true,
	"connlost":         true,
	"migratedoffloads": true,
}

// counterMutators is the audited mutator set, keyed by package base then
// "ReceiverType.method". Only these functions may write counter fields
// directly; every other code path must go through them, so a new drop or
// shed path cannot lose a frame without either calling a mutator or
// tripping this analyzer.
var counterMutators = map[string]map[string]bool{
	"edge": {
		"Scheduler.countServed":    true,
		"Scheduler.countRejected":  true,
		"Scheduler.countShed":      true,
		"Scheduler.countCancelled": true,
		"Scheduler.countKeyframes": true,
		"Scheduler.countWarped":    true,
		"Session.noteServed":       true,
		"Session.noteRejected":     true,
		"Session.noteShed":         true,
	},
	"transport": {
		"Client.noteRejected": true,
		"Client.noteShed":     true,
		"Client.noteConnLost": true,
	},
	"pipeline": {
		"BackendStats.CountDropped":   true,
		"BackendStats.CountDiscarded": true,
		"BackendStats.CountMigrated":  true,
	},
	"loadgen": {
		"sim.countOffered":   true,
		"sim.countDropped":   true,
		"sim.countRejected":  true,
		"sim.countShed":      true,
		"sim.countServed":    true,
		"sim.countKeyframes": true,
		"sim.countWarped":    true,
		"sim.countMigrated":  true,
	},
	"drive": {
		"agg.noteServed":   true,
		"agg.noteRejected": true,
		"agg.noteShed":     true,
		"agg.noteDropped":  true,
		"agg.noteMigrated": true,
		"agg.absorb":       true,
	},
	"fleet": {
		// foldLocked is the single place a retired connection's counters
		// settle into the client-lifetime tallies (classifying unresolved
		// frames as migrated or connlost); Stats overlays the live
		// connection's counters onto a snapshot of those tallies.
		"FleetClient.foldLocked": true,
		"FleetClient.Stats":      true,
	},
}

// Conservation is the statically-enforced half of the no-silent-loss law:
// runtime checks reconcile the counters, this analyzer guarantees every
// counter movement is one of the audited mutations being reconciled.
var Conservation = &Analyzer{
	Name:      "conservation",
	Directive: "counter",
	Doc: `restricts accounting-counter writes to audited mutators

The serving stack's conservation law (offered == served + rejected + shed +
dropped) is only as strong as the guarantee that no code path moves a
counter outside the audited mutator set. Writes to counter-named struct
fields (served, offered, rejected, shed, dropped, cancelled, discarded,
...) are flagged unless they occur inside a registered mutator method or
aggregate same-named fields (dst.Served += src.Served). Reviewed direct
writes must be annotated //edgeis:counter <reason>.`,
	Run: runConservation,
}

func runConservation(pass *Pass) error {
	if !conservationPkgs[pass.PkgBase()] {
		return nil
	}
	allowed := counterMutators[pass.PkgBase()]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			if allowed[mutatorKey(d)] {
				continue
			}
			checkCounterWrites(pass, d.Body)
		}
	}
	return nil
}

// mutatorKey renders a declaration as "ReceiverType.method" (or just the
// function name for plain functions, which are never in the audited set).
func mutatorKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkCounterWrites flags assignments and ++/-- on counter fields within
// one non-mutator function body.
func checkCounterWrites(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				name, ok := counterFieldWrite(pass, lhs)
				if !ok {
					continue
				}
				if len(s.Rhs) == len(s.Lhs) && isSameNameAggregation(s.Tok, s.Rhs[i], name) {
					continue
				}
				reportCounterWrite(pass, lhs.Pos(), name)
			}
		case *ast.IncDecStmt:
			if name, ok := counterFieldWrite(pass, s.X); ok {
				reportCounterWrite(pass, s.Pos(), name)
			}
		}
		return true
	})
}

func reportCounterWrite(pass *Pass, pos token.Pos, name string) {
	pass.Reportf(pos,
		"write to accounting counter %s outside the audited mutator set: route it through a registered mutator so the conservation law stays auditable, or annotate //edgeis:counter <reason>",
		name)
}

// counterFieldWrite reports whether expr writes a struct field whose name
// is one of the conserved counters. Local variables with counter-like
// names are loop tallies, not conserved state, and are exempt.
func counterFieldWrite(pass *Pass, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	if !counterFields[strings.ToLower(v.Name())] {
		return "", false
	}
	// Counters count: only integer-typed fields are conserved quantities.
	// A bool named Dropped is a per-item flag, not an accounting tally.
	basic, ok := v.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return "", false
	}
	return v.Name(), true
}

// isSameNameAggregation exempts copies and roll-ups between same-named
// counter fields (s.Served += o.Served, total.Dropped = run.Dropped):
// counts move between scopes without being created or destroyed, so the
// conservation law is preserved by construction.
func isSameNameAggregation(tok token.Token, rhs ast.Expr, name string) bool {
	if tok != token.ASSIGN && tok != token.ADD_ASSIGN {
		return false
	}
	switch r := rhs.(type) {
	case *ast.SelectorExpr:
		return r.Sel.Name == name
	case *ast.Ident:
		return r.Name == name
	}
	return false
}
