package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared machinery behind the lockbalance and lockblock
// analyzers: a path-sensitive walk over one function body that tracks which
// sync.Mutex/sync.RWMutex receivers are held at every statement. Branches
// fork the state and merge it back (paths that return are excluded from the
// merge), loops must preserve the entry state across an iteration, and
// go-statement and function-literal bodies are analyzed independently with
// an empty state — a goroutine never inherits its spawner's critical
// section. The walk is deliberately syntactic about aliasing: a mutex is
// keyed by the printed receiver expression ("s.mu", with an "/r" suffix for
// the RWMutex reader side), which matches how this codebase names locks and
// keeps the analysis cheap and predictable.

// mutexOp is one classified Lock/Unlock-family call site.
type mutexOp struct {
	key  string // printed receiver expression; "/r"-suffixed for RLock/RUnlock
	name string // method name: Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
}

// classifyMutexOp returns the mutex operation call performs, or nil. Only
// methods whose receiver resolves (directly or through embedding) to
// sync.Mutex or sync.RWMutex count; sync.Cond and user types with
// coincidental method names do not.
func classifyMutexOp(pass *Pass, call *ast.CallExpr) *mutexOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil
	}
	if !isSyncMethod(pass, sel, "Mutex", "RWMutex") {
		return nil
	}
	op := &mutexOp{key: types.ExprString(sel.X), name: sel.Sel.Name}
	if strings.HasPrefix(sel.Sel.Name, "R") || sel.Sel.Name == "TryRLock" {
		op.key += "/r"
	}
	return op
}

// isSyncMethod reports whether sel is a method whose receiver is one of the
// named sync types.
func isSyncMethod(pass *Pass, sel *ast.SelectorExpr, typeNames ...string) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range typeNames {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// lockState is the mutexes held on one control-flow path.
type lockState struct {
	held     map[string]token.Pos // key -> position of the Lock call
	deferred map[string]token.Pos // key -> position of the deferred Unlock
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]token.Pos{}}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

// sameHeld reports whether two states hold the same lock set.
func (st *lockState) sameHeld(other *lockState) bool {
	if len(st.held) != len(other.held) {
		return false
	}
	for k := range st.held {
		if _, ok := other.held[k]; !ok {
			return false
		}
	}
	return true
}

// lockHooks are the analyzer-specific callbacks the walker fires. Any nil
// hook is skipped, so lockbalance and lockblock share one walk.
type lockHooks struct {
	// onDoubleLock: key locked at prev is locked again by call.
	onDoubleLock func(call *ast.CallExpr, op *mutexOp, prev token.Pos)
	// onUnlockUnheld: call unlocks a key no path-visible Lock is holding.
	onUnlockUnheld func(call *ast.CallExpr, op *mutexOp)
	// onDance: call manually unlocks a key whose deferred Unlock (at
	// deferPos) is still pending — the unlock-relock dance.
	onDance func(call *ast.CallExpr, op *mutexOp, deferPos token.Pos)
	// onHeldAtReturn: key locked at lockPos is still held when the function
	// returns at pos with no deferred Unlock covering it.
	onHeldAtReturn func(pos token.Pos, key string, lockPos token.Pos)
	// onBranchImbalance: key is held on some merging paths but not others.
	onBranchImbalance func(pos token.Pos, key string)
	// onLoopImbalance: the loop body changes key's held/free status, so each
	// iteration compounds the imbalance.
	onLoopImbalance func(pos token.Pos, key string)
	// onBlocking: a potentially blocking operation (what) runs while key,
	// locked at lockPos, is held.
	onBlocking func(pos token.Pos, what, key string, lockPos token.Pos)
	// blockingCall classifies analyzer-specific blocking calls; it is only
	// consulted while at least one lock is held.
	blockingCall func(call *ast.CallExpr) (string, bool)
}

// lockWalker drives one analyzer's walk over a file's functions.
type lockWalker struct {
	pass  *Pass
	hooks lockHooks
}

// walkFile analyzes every function body in f independently.
func (w *lockWalker) walkFile(f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				w.funcBody(d.Body)
			}
		case *ast.GenDecl:
			// Package-level initializer expressions can carry closures.
			for _, spec := range d.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, newLockState())
					}
				}
			}
		}
	}
}

// funcBody analyzes one function or closure body with a fresh state and
// checks the implicit return at the closing brace.
func (w *lockWalker) funcBody(body *ast.BlockStmt) {
	st := newLockState()
	if !w.stmts(body.List, st) {
		w.checkReturn(body.Rbrace, st)
	}
}

// stmts walks a statement list; true means the path terminated (returned,
// branched away, or entered a loop it cannot leave).
func (w *lockWalker) stmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

type lockBranch struct {
	st   *lockState
	term bool
}

func (w *lockWalker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		w.blocking(s.Pos(), "channel send", st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.funcBody(lit.Body)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
		w.checkReturn(s.Pos(), st)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the structured path; treating them as
		// terminators keeps the merge sound at the cost of not chasing the
		// jump target.
		return s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		then := &lockBranch{st: st.clone()}
		then.term = w.stmts(s.Body.List, then.st)
		alt := &lockBranch{st: st.clone()}
		if s.Else != nil {
			alt.term = w.stmt(s.Else, alt.st)
		}
		return w.merge(st, s.Body.Lbrace, []*lockBranch{then, alt})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Tag, st)
		return w.caseClauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		return w.caseClauses(s.Body, st, true)
	case *ast.SelectStmt:
		return w.selectStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		body := st.clone()
		term := w.stmts(s.Body.List, body)
		if !term && s.Post != nil {
			w.stmt(s.Post, body)
		}
		if !term {
			w.requireLoopBalance(s.For, st, body)
		}
		// for {} with no break never falls out of the loop; every exit is a
		// return inside the body, which the walk above already checked.
		if s.Cond == nil && !hasBreak(s.Body) {
			return true
		}
	case *ast.RangeStmt:
		w.expr(s.X, st)
		body := st.clone()
		if !w.stmts(s.Body.List, body) {
			w.requireLoopBalance(s.For, st, body)
		}
	}
	return false
}

// caseClauses merges the bodies of a switch. implicitFallthrough: when no
// default clause exists the zero-case path carries the entry state.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, st *lockState, implicitPath bool) bool {
	var branches []*lockBranch
	hasDefault := false
	for _, cs := range body.List {
		clause, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			w.expr(e, st)
		}
		b := &lockBranch{st: st.clone()}
		b.term = w.stmts(clause.Body, b.st)
		branches = append(branches, b)
	}
	if implicitPath && !hasDefault {
		branches = append(branches, &lockBranch{st: st.clone()})
	}
	return w.merge(st, body.Lbrace, branches)
}

func (w *lockWalker) selectStmt(s *ast.SelectStmt, st *lockState) bool {
	hasDefault := false
	for _, cs := range s.Body.List {
		if clause, ok := cs.(*ast.CommClause); ok && clause.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.blocking(s.Select, "select without a default case", st)
	}
	var branches []*lockBranch
	for _, cs := range s.Body.List {
		clause, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		b := &lockBranch{st: st.clone()}
		// The comm operation itself is the select's decision point, not an
		// extra blocking site; walk its sub-expressions without reporting
		// the top-level send/receive.
		w.commStmt(clause.Comm, b.st)
		b.term = w.stmts(clause.Body, b.st)
		branches = append(branches, b)
	}
	return w.merge(st, s.Body.Lbrace, branches)
}

// commStmt walks a select comm clause's statement, skipping the blocking
// report for its top-level channel operation (the select already decided).
func (w *lockWalker) commStmt(s ast.Stmt, st *lockState) {
	stripRecv := func(e ast.Expr) {
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.expr(u.X, st)
			return
		}
		w.expr(e, st)
	}
	switch s := s.(type) {
	case nil:
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			stripRecv(e)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.ExprStmt:
		stripRecv(s.X)
	}
}

// merge folds branch exit states back into st. Terminated branches left the
// function and do not constrain the merged state; if every branch
// terminated the whole statement terminates. Live branches must agree on
// the held set — a key held on one path but not another is exactly the
// "forgot to unlock in the early-return arm" bug.
func (w *lockWalker) merge(st *lockState, pos token.Pos, branches []*lockBranch) bool {
	var live []*lockBranch
	for _, b := range branches {
		if !b.term {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		return true
	}
	first := live[0].st
	for _, b := range live[1:] {
		if !first.sameHeld(b.st) {
			for _, key := range heldDiff(first, b.st) {
				if w.hooks.onBranchImbalance != nil {
					w.hooks.onBranchImbalance(pos, key)
				}
			}
			break
		}
	}
	// Continue with the first live branch; deferred unlocks union across
	// live branches so a conditional defer still covers the return check.
	st.held = first.held
	st.deferred = first.deferred
	for _, b := range live[1:] {
		for k, v := range b.st.deferred {
			if _, ok := st.deferred[k]; !ok {
				st.deferred[k] = v
			}
		}
	}
	return false
}

// heldDiff returns the keys held in exactly one of the two states.
func heldDiff(a, b *lockState) []string {
	var keys []string
	for k := range a.held {
		if _, ok := b.held[k]; !ok {
			keys = append(keys, k)
		}
	}
	for k := range b.held {
		if _, ok := a.held[k]; !ok {
			keys = append(keys, k)
		}
	}
	return keys
}

// requireLoopBalance reports keys whose held status differs between loop
// entry and the end of one iteration: each pass would lock or unlock once
// more than the last.
func (w *lockWalker) requireLoopBalance(pos token.Pos, entry, exit *lockState) {
	if entry.sameHeld(exit) {
		return
	}
	if w.hooks.onLoopImbalance != nil {
		for _, key := range heldDiff(entry, exit) {
			w.hooks.onLoopImbalance(pos, key)
		}
	}
}

// checkReturn fires when a path leaves the function: every held lock must
// have a deferred Unlock covering it.
func (w *lockWalker) checkReturn(pos token.Pos, st *lockState) {
	if w.hooks.onHeldAtReturn == nil {
		return
	}
	for key, lockPos := range st.held {
		if _, ok := st.deferred[key]; !ok {
			w.hooks.onHeldAtReturn(pos, key, lockPos)
		}
	}
}

// deferStmt records deferred unlocks. A deferred closure counts as a
// deferred unlock for each mutex it unlocks without also locking it; a
// closure that locks anything is analyzed as an ordinary function body
// instead (it is self-contained at return time).
func (w *lockWalker) deferStmt(s *ast.DeferStmt, st *lockState) {
	for _, a := range s.Call.Args {
		w.expr(a, st)
	}
	if op := classifyMutexOp(w.pass, s.Call); op != nil {
		if op.name == "Unlock" || op.name == "RUnlock" {
			st.deferred[op.key] = s.Defer
		}
		return
	}
	lit, ok := s.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	locks := map[string]bool{}
	var unlocks []*mutexOp
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := classifyMutexOp(w.pass, call); op != nil {
			switch op.name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				locks[op.key] = true
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, op)
			}
		}
		return true
	})
	covered := false
	for _, op := range unlocks {
		if !locks[op.key] {
			st.deferred[op.key] = s.Defer
			covered = true
		}
	}
	if !covered {
		w.funcBody(lit.Body)
	}
}

// expr walks an expression with the current lock state: mutex operations
// mutate it, closures are analyzed independently, and receives/blocking
// calls are reported while a lock is held.
func (w *lockWalker) expr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.funcBody(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blocking(n.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			if op := classifyMutexOp(w.pass, n); op != nil {
				w.mutexOp(n, op, st)
				return false
			}
			if isCondWait(w.pass, n) {
				// sync.Cond.Wait atomically releases and reacquires its
				// mutex; the net lock state is unchanged and parking on the
				// condition is the intended use, not a lock-held stall.
				return false
			}
			if len(st.held) > 0 && w.hooks.blockingCall != nil {
				if what, ok := w.hooks.blockingCall(n); ok {
					w.blocking(n.Pos(), what, st)
				}
			}
		}
		return true
	})
}

// mutexOp applies one Lock/Unlock call to the path state. TryLock's
// conditional acquisition is ignored rather than modeled.
func (w *lockWalker) mutexOp(call *ast.CallExpr, op *mutexOp, st *lockState) {
	switch op.name {
	case "Lock", "RLock":
		if prev, ok := st.held[op.key]; ok {
			if w.hooks.onDoubleLock != nil {
				w.hooks.onDoubleLock(call, op, prev)
			}
			return
		}
		st.held[op.key] = call.Pos()
	case "Unlock", "RUnlock":
		if deferPos, ok := st.deferred[op.key]; ok {
			if w.hooks.onDance != nil {
				w.hooks.onDance(call, op, deferPos)
			}
		}
		if _, ok := st.held[op.key]; ok {
			delete(st.held, op.key)
		} else if _, ok := st.deferred[op.key]; !ok {
			if w.hooks.onUnlockUnheld != nil {
				w.hooks.onUnlockUnheld(call, op)
			}
		}
	}
}

// blocking reports a blocking operation against every held lock.
func (w *lockWalker) blocking(pos token.Pos, what string, st *lockState) {
	if w.hooks.onBlocking == nil || len(st.held) == 0 {
		return
	}
	for key, lockPos := range st.held {
		w.hooks.onBlocking(pos, what, key, lockPos)
	}
}

// isCondWait reports whether call is sync.Cond.Wait.
func isCondWait(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	return isSyncMethod(pass, sel, "Cond")
}

// hasBreak reports whether body contains a break that targets this loop
// (any unlabeled break not inside a nested for/switch/select).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			// A break inside these binds to them, not to the outer loop.
			// Labeled breaks could still escape, but a labeled break targeting
			// an unlabeled-for cannot exist, and the enclosing LabeledStmt
			// case is rare enough to accept the approximation.
			return false
		}
		return !found
	}
	ast.Inspect(body, walk)
	return found
}
