package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floatEqPkgs are the scheduler and geometry packages where float ordering
// decisions live: the event-queue tie-breaking PR 2 fixed showed rounding
// can invert an exact-equality branch there.
var floatEqPkgs = map[string]bool{
	"pipeline": true,
	"geom":     true,
	"linalg":   true,
	"mask":     true,
	"vo":       true,
}

// FloatEq flags == and != between floating-point operands in scheduler and
// geometry packages. Comparing against the literal 0 is allowed: an exact
// zero test is the idiomatic guard before division or normalization and
// involves no accumulated rounding.
var FloatEq = &Analyzer{
	Name:      "floateq",
	Directive: "floateq",
	Doc: `flags exact float equality in scheduler/geometry code

Two float expressions that are mathematically equal can compare unequal
after rounding, silently inverting tie-breaks and ordering decisions (the
PR-2 event-queue bug class). Compare against an epsilon, restructure the
tie-break over exact integers, or annotate //edgeis:floateq <reason>.
Comparisons against the literal 0 are exempt (exactness guards).`,
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	if !floatEqPkgs[pass.PkgBase()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, bin.X) && !isFloat(pass, bin.Y) {
				return true
			}
			if isZeroLiteral(pass, bin.X) || isZeroLiteral(pass, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"%s on float operands in package %q: rounding can invert this decision; compare with an epsilon or annotate //edgeis:floateq <reason>",
				bin.Op, pass.PkgBase())
			return true
		})
	}
	return nil
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroLiteral reports whether e is a compile-time constant equal to zero.
func isZeroLiteral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
