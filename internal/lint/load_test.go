package lint_test

import (
	"strings"
	"testing"

	"edgeis/internal/lint"
)

// The loader's failure modes must surface as positioned errors, never
// panics: a driver run against a broken tree should print file:line and
// exit, not stack-trace.

func TestTypeCheckReportsParseError(t *testing.T) {
	_, err := lint.TypeCheck("bad", []string{"bad.go"}, map[string][]byte{
		"bad.go": []byte("package bad\n\nfunc {\n"),
	})
	if err == nil {
		t.Fatal("want a parse error, got nil")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("parse error does not name the file: %v", err)
	}
}

func TestTypeCheckReportsTypeErrorWithPosition(t *testing.T) {
	_, err := lint.TypeCheck("bad", []string{"bad.go"}, map[string][]byte{
		"bad.go": []byte("package bad\n\nfunc f() int { return undefinedIdent }\n"),
	})
	if err == nil {
		t.Fatal("want a type error, got nil")
	}
	if !strings.Contains(err.Error(), "bad.go:3") {
		t.Fatalf("type error does not carry file:line: %v", err)
	}
	if !strings.Contains(err.Error(), "undefinedIdent") {
		t.Fatalf("type error does not name the offender: %v", err)
	}
}

func TestTypeCheckReportsMissingExportData(t *testing.T) {
	_, err := lint.TypeCheck("bad", []string{"bad.go"}, map[string][]byte{
		"bad.go": []byte("package bad\n\nimport missing \"edgeis/internal/lint/nosuchpkg\"\n\nvar _ = missing.X\n"),
	})
	if err == nil {
		t.Fatal("want an import error, got nil")
	}
	if !strings.Contains(err.Error(), "nosuchpkg") {
		t.Fatalf("import error does not name the missing package: %v", err)
	}
}

func TestLoadReportsBrokenPackage(t *testing.T) {
	_, err := lint.Load("./testdata/src/broken")
	if err == nil {
		t.Fatal("want an error loading a broken package, got nil")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Fatalf("load error does not identify the package: %v", err)
	}
}

func TestLoadReportsUnknownPattern(t *testing.T) {
	_, err := lint.Load("./no/such/dir")
	if err == nil {
		t.Fatal("want an error for an unknown pattern, got nil")
	}
}
