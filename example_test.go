package edgeis_test

import (
	"fmt"

	"edgeis"
)

// Example runs the complete edgeIS system on a short synthetic clip and
// prints the headline metrics — the smallest end-to-end use of the library.
func Example() {
	cam := edgeis.StandardCamera(320, 240)
	sys := edgeis.NewSystem(edgeis.SystemConfig{
		Camera: cam,
		Device: edgeis.IPhone11,
		Seed:   1,
	})
	engine := edgeis.NewEngine(edgeis.EngineConfig{
		World:       edgeis.StreetScene(edgeis.ScenePreset{Seed: 1, ObjectCount: 3}),
		Camera:      cam,
		Trajectory:  edgeis.InspectionRoute(edgeis.WalkSpeed),
		Frames:      150,
		CameraSpeed: edgeis.WalkSpeed,
		Medium:      edgeis.WiFi5,
		Seed:        1,
	}, sys)
	evals, stats := engine.Run()
	acc := edgeis.Evaluate("edgeIS", evals, 60)

	fmt.Printf("frames processed: %d\n", stats.Frames)
	fmt.Printf("within mobile budget: %v\n", acc.MeanLatencyMs() < 33.4)
	fmt.Printf("offloaded keyframes under half the frames: %v\n",
		stats.Offloads < stats.Frames/2)
	// Output:
	// frames processed: 150
	// within mobile budget: true
	// offloaded keyframes under half the frames: true
}

// ExampleNewModel shows the calibrated backend trade-off of the paper's
// motivation study: the detector is fast, the segmenters pay for masks.
func ExampleNewModel() {
	rcnn := edgeis.NewModel(edgeis.MaskRCNN)
	yolo := edgeis.NewModel(edgeis.YOLOv3)
	fmt.Printf("mask-rcnn slower than yolov3: %v\n",
		rcnn.Profile.BackboneMs+rcnn.Profile.RPNFixedMs > yolo.Profile.BackboneMs+yolo.Profile.HeadFixedMs)
	fmt.Printf("yolov3 is box-only: %v\n", yolo.Profile.BoxOnly)
	// Output:
	// mask-rcnn slower than yolov3: true
	// yolov3 is box-only: true
}
