module edgeis

go 1.22
