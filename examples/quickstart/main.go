// Quickstart: run the edgeIS system on a synthetic street scene for ten
// seconds of video and print what the user would have seen — per-frame
// masks scored against ground truth, plus the offload activity.
package main

import (
	"fmt"
	"log"

	"edgeis"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cam := edgeis.StandardCamera(320, 240)

	// A street with three labeled objects, inspected at walking speed.
	world := edgeis.StreetScene(edgeis.ScenePreset{Seed: 1, ObjectCount: 3})

	// The full mobile runtime: visual odometry, mask transfer, offload
	// selection and edge-model guidance, on an iPhone 11 profile.
	sys := edgeis.NewSystem(edgeis.SystemConfig{
		Camera: cam,
		Device: edgeis.IPhone11,
		Seed:   1,
	})

	// The simulation engine drives 300 frames (10 s at 30 fps) through the
	// system over a WiFi 5 GHz link to a Jetson TX2-class edge server.
	engine := edgeis.NewEngine(edgeis.EngineConfig{
		World:       world,
		Camera:      cam,
		Trajectory:  edgeis.InspectionRoute(edgeis.WalkSpeed),
		Frames:      300,
		CameraSpeed: edgeis.WalkSpeed,
		Medium:      edgeis.WiFi5,
		Seed:        1,
	}, sys)

	evals, stats := engine.Run()

	// Score everything after the shared initialization window.
	acc := edgeis.Evaluate("edgeIS", evals, 60)
	fmt.Println("=== edgeIS quickstart ===")
	fmt.Printf("frames:          %d (%.1f s of video)\n", stats.Frames, float64(stats.Frames)/30)
	fmt.Printf("mean IoU:        %.3f\n", acc.MeanIoU())
	fmt.Printf("false rate@0.75: %.1f%%\n", 100*acc.FalseRate(0.75))
	fmt.Printf("mobile latency:  %.1f ms/frame (budget 33.3)\n", acc.MeanLatencyMs())
	fmt.Printf("offloads:        %d keyframes, %d KB uplink\n",
		stats.Offloads, stats.UplinkBytes/1024)
	fmt.Printf("edge inference:  %d runs, %.0f ms mean (CIIA-accelerated)\n",
		stats.EdgeResultCount, stats.EdgeInferMsSum/float64(max(stats.EdgeResultCount, 1)))

	st := sys.Stats()
	fmt.Printf("session:         %d init attempts, %d tracking losses\n",
		st.InitAttempts, st.LostEvents)
	fmt.Printf("resources:       %.0f%% CPU, %.0f MB peak memory\n",
		100*sys.CPU().Utilization(), sys.Memory().Peak())
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
