// Inspection: the oil-field AR scenario of the paper's case study
// (Section VI-G). A fleet of devices — AR glasses on WiFi and phones on
// LTE — inspects industrial equipment; the example reports per-device
// segmentation quality and the rendered-overlay experience.
package main

import (
	"fmt"
	"log"

	"edgeis"
	"edgeis/internal/dataset"
	"edgeis/internal/device"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cam := edgeis.StandardCamera(320, 240)
	fmt.Println("=== oil-field AR inspection (paper Section VI-G) ===")
	fmt.Println("fleet: 2x Dream Glass over WiFi 5GHz + 1x iPhone 11 over LTE")
	fmt.Println()

	type unit struct {
		dev    device.Profile
		medium netsim.Medium
	}
	fleet := []unit{
		{edgeis.DreamGlass, netsim.WiFi5},
		{edgeis.DreamGlass, netsim.WiFi5},
		{edgeis.IPhone11, netsim.LTE},
	}

	total := metrics.NewAccumulator("fleet")
	for i, u := range fleet {
		clip := dataset.FieldClip(int64(100+i), 360)
		sys := edgeis.NewSystem(edgeis.SystemConfig{
			Camera: cam, Device: u.dev, Seed: int64(100 + i),
		})
		engine := edgeis.NewEngine(edgeis.EngineConfig{
			World:       clip.World,
			Camera:      cam,
			Trajectory:  clip.Traj,
			Frames:      clip.Frames,
			CameraSpeed: clip.CameraSpeed,
			Medium:      u.medium,
			Seed:        int64(100 + i),
			// The field edge node is a Jetson AGX Xavier.
			EdgeInferScale: edgeis.JetsonXavier.InferScale,
		}, sys)
		evals, stats := engine.Run()
		acc := edgeis.Evaluate(u.dev.Name, evals, 60)
		total.Merge(acc)

		fmt.Printf("device %d (%s over %s):\n", i+1, u.dev.Name, u.medium)
		fmt.Printf("  segmentation IoU %.3f, false@0.5 %.1f%%, %d offloads, %d KB up\n",
			acc.MeanIoU(), 100*acc.FalseRate(0.5), stats.Offloads, stats.UplinkBytes/1024)

		// Power: extrapolate the measured duty cycle to a 10-minute shift.
		pm := device.NewPowerModel(u.dev)
		wallS := float64(stats.Frames) / 30
		radioMbits := float64(stats.UplinkBytes+stats.DownlinkBytes) * 8 / 1e6
		pm.Add(600, sys.CPU().Utilization(), radioMbits*600/wallS)
		fmt.Printf("  projected battery drain: %.1f%% per 10 min\n", pm.BatteryDrainPct())
	}

	fmt.Println()
	fmt.Printf("fleet segmentation accuracy: %.1f%%  (paper reports 87%%)\n", 100*total.MeanIoU())
	fmt.Printf("fleet false segmentation:    %.1f%%  (paper reports 8%%)\n",
		100*total.FalseRate(0.5))
	return nil
}
