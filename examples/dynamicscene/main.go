// Dynamicscene: a scene where objects start moving mid-run. The example
// shows the per-object pose machinery of Section III-B at work: the VO
// flags the moving instance, the CFRS triggers mask-correction offloads,
// and the per-object pose keeps the transferred masks on target.
package main

import (
	"fmt"
	"log"

	"edgeis"
	"edgeis/internal/core"
	"edgeis/internal/feature"
	"edgeis/internal/geom"
	"edgeis/internal/metrics"
	"edgeis/internal/pipeline"
	"edgeis/internal/roisel"
	"edgeis/internal/scene"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cam := edgeis.StandardCamera(320, 240)

	// One car that starts driving at t = 3 s, one static bystander.
	world := scene.NewWorld(scene.WorldConfig{Seed: 5}, []*scene.Object{
		{Class: scene.Car, Center: geom.V3(-2, 1, 9), Half: geom.V3(1.6, 1, 1),
			Motion: scene.Motion{Velocity: geom.V3(0.8, 0, 0), StartAt: 3.0}},
		{Class: scene.Person, Center: geom.V3(3, 0.95, 7), Half: geom.V3(0.35, 0.95, 0.3)},
	})
	traj := scene.WaypointPath{
		Waypoints: []geom.Vec3{geom.V3(-2, 1.6, -2), geom.V3(3, 1.6, -1)},
		Target:    geom.V3(0, 1, 9),
		Speed:     edgeis.WalkSpeed,
	}

	sys := core.NewSystem(core.Config{Camera: cam, Device: edgeis.IPhone11, Seed: 5})
	engine := pipeline.NewEngine(pipeline.Config{
		World: world, Camera: cam, Trajectory: traj,
		Frames: 360, CameraSpeed: edgeis.WalkSpeed,
		Medium: edgeis.WiFi5, Seed: 5,
	}, sys)

	evals, _ := engine.Run()

	fmt.Println("=== dynamic scene: car starts moving at t=3s (frame 90) ===")
	before := metrics.NewAccumulator("static phase")
	after := metrics.NewAccumulator("dynamic phase")
	for _, ev := range evals {
		switch {
		case ev.Index >= 60 && ev.Index < 90:
			before.AddFrame(ev.IoUs, ev.LatencyMs)
		case ev.Index >= 120: // skip the detection transient
			after.AddFrame(ev.IoUs, ev.LatencyMs)
		}
	}
	fmt.Printf("before motion:  IoU %.3f, false@0.75 %.1f%%\n",
		before.MeanIoU(), 100*before.FalseRate(0.75))
	fmt.Printf("during motion:  IoU %.3f, false@0.75 %.1f%%\n",
		after.MeanIoU(), 100*after.FalseRate(0.75))

	fmt.Println("\ntracked instances:")
	for _, inst := range sys.VO().Instances() {
		state := "static"
		if inst.Moving {
			state = "MOVING"
		}
		fmt.Printf("  instance %d (class %d): %s, fit RMSE %.1f px, static-hypothesis RMSE %.1f px\n",
			inst.ID, inst.Label, state, inst.FitRMSE, inst.StaticRMSE)
	}

	counts := sys.Selector().ReasonCounts()
	fmt.Println("\noffload reasons:")
	for _, r := range []roisel.Reason{
		roisel.ReasonNewContent, roisel.ReasonObjectMotion, roisel.ReasonKeyframe, roisel.ReasonLost,
	} {
		if counts[r] > 0 {
			fmt.Printf("  %-14s %d\n", r, counts[r])
		}
	}
	_ = feature.Config{}
	return nil
}
