// Networkstudy: the same clip over WiFi 2.4 GHz, WiFi 5 GHz and LTE,
// comparing edgeIS against the adapted EAAR and EdgeDuet baselines — a
// runnable miniature of the paper's Fig. 10.
package main

import (
	"fmt"
	"log"

	"edgeis"
	"edgeis/internal/baseline"
	"edgeis/internal/dataset"
	"edgeis/internal/metrics"
	"edgeis/internal/netsim"
	"edgeis/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cam := edgeis.StandardCamera(320, 240)
	clip := dataset.KITTI(9, 300)[0]

	systems := []struct {
		name  string
		build func() pipeline.Strategy
	}{
		{"edgeIS", func() pipeline.Strategy {
			return edgeis.NewSystem(edgeis.SystemConfig{Camera: cam, Device: edgeis.IPhone11, Seed: 9})
		}},
		{"EAAR", func() pipeline.Strategy { return baseline.NewEAAR(cam, edgeis.IPhone11) }},
		{"EdgeDuet", func() pipeline.Strategy { return baseline.NewEdgeDuet(cam, edgeis.IPhone11) }},
	}
	media := []netsim.Medium{netsim.WiFi24, netsim.WiFi5, netsim.LTE}

	fmt.Println("=== network sensitivity (false rate @ IoU 0.75) ===")
	fmt.Printf("%-10s", "system")
	for _, m := range media {
		fmt.Printf(" %14s", m)
	}
	fmt.Println()

	for _, sysDef := range systems {
		fmt.Printf("%-10s", sysDef.name)
		for _, m := range media {
			engine := pipeline.NewEngine(pipeline.Config{
				World: clip.World, Camera: cam, Trajectory: clip.Traj,
				Frames: clip.Frames, CameraSpeed: clip.CameraSpeed,
				Medium: m, Seed: 9,
			}, sysDef.build())
			evals, _ := engine.Run()
			acc := pipeline.EvaluateFrom(sysDef.name, evals, 60)
			fmt.Printf(" %13.1f%%", 100*acc.FalseRate(metrics.StrictThreshold))
		}
		fmt.Println()
	}
	fmt.Println("\npaper (WiFi5): edgeIS 4.1%, EAAR 21%, EdgeDuet 41%")
	fmt.Println("paper (WiFi2.4): edgeIS 6.1%; baselines degrade further")
	return nil
}
