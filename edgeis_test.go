package edgeis

import (
	"testing"
	"time"
)

// TestPublicAPIQuickstart exercises the documented quick-start path.
func TestPublicAPIQuickstart(t *testing.T) {
	cam := StandardCamera(320, 240)
	sys := NewSystem(SystemConfig{Camera: cam, Device: IPhone11, Seed: 1})
	engine := NewEngine(EngineConfig{
		World:       StreetScene(ScenePreset{Seed: 1, ObjectCount: 3}),
		Camera:      cam,
		Trajectory:  InspectionRoute(WalkSpeed),
		Frames:      120,
		CameraSpeed: WalkSpeed,
		Medium:      WiFi5,
		Seed:        1,
	}, sys)
	evals, stats := engine.Run()
	if stats.Frames != 120 {
		t.Fatalf("frames = %d", stats.Frames)
	}
	acc := Evaluate("edgeIS", evals, 60)
	if acc.Samples() == 0 {
		t.Fatal("no samples")
	}
	if sys.Name() != "edgeIS" {
		t.Errorf("name = %q", sys.Name())
	}
}

// TestPublicAPITransport exercises the exported TCP server/client pair.
func TestPublicAPITransport(t *testing.T) {
	srv := NewEdgeServer(NewModel(MaskRCNN))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := DialEdge(addr.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIDatasets checks the exported corpora constructors.
func TestPublicAPIDatasets(t *testing.T) {
	if len(AllClips(1, 90)) < 6 {
		t.Error("corpus too small")
	}
	for _, c := range []Clip{DAVISClips(1, 60)[0], KITTIClips(1, 60)[0], XiphClips(1, 60)[0], SelfRecordedClips(1, 60)[0]} {
		if c.World == nil || c.Frames != 60 {
			t.Errorf("bad clip %v", c)
		}
	}
}

// TestPublicAPIModels checks the exported model kinds and their calibrated
// latency ordering.
func TestPublicAPIModels(t *testing.T) {
	for _, k := range []ModelKind{MaskRCNN, YOLACT, YOLOv3} {
		if NewModel(k) == nil {
			t.Fatalf("no model for %v", k)
		}
	}
	speeds := []float64{WalkSpeed, StrideSpeed, JogSpeed}
	for i := 1; i < len(speeds); i++ {
		if speeds[i] <= speeds[i-1] {
			t.Error("gait speeds not increasing")
		}
	}
}

// TestPublicAPIExperiments smoke-tests an exported figure entry point.
func TestPublicAPIExperiments(t *testing.T) {
	r := Fig2b(1)
	if r.ID != "Fig2b" || len(r.Lines) == 0 {
		t.Errorf("result = %+v", r)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}
