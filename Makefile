GO ?= go
FUZZTIME ?= 30s
BENCHTIME ?= 200ms

.PHONY: build test short race vet lint fuzz bench kernelbench loadgen servingbench check

build: ## Compile every package and binary.
	$(GO) build ./...

test: ## Run the full test suite.
	$(GO) test ./...

short: ## Run the suite without the long integration sweeps.
	$(GO) test -short ./...

race: ## Full suite under the race detector (slow; the heaviest sweeps self-skip). Includes the multi-client edge-scheduler tests, which are occupancy-bound so their scaling assertions hold under -race. The loadgen drive tests run a shortened smoke profile (see raceProfile) so their wall-clock pacing stays bounded.
	$(GO) test -race ./...

vet: ## Standard static analysis.
	$(GO) vet ./...

lint: ## Repo-specific determinism/concurrency analyzers (see DESIGN.md §11 and §16).
	$(GO) run ./cmd/edgeis-lint ./...

fuzz: ## Brief fuzz pass over the wire-protocol decoders.
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalFrame -fuzztime=$(FUZZTIME) ./internal/transport/
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalResult -fuzztime=$(FUZZTIME) ./internal/transport/
	$(GO) test -run=NONE -fuzz=FuzzUnmarshalError -fuzztime=$(FUZZTIME) ./internal/transport/

bench: kernelbench ## Per-figure benchmarks plus the packed-kernel sweep.
	$(GO) test -bench=. -benchmem .

kernelbench: ## Packed-vs-scalar mask kernel sweep; refreshes BENCH_kernels.json.
	$(GO) run ./cmd/edgeis-kernelbench -benchtime $(BENCHTIME) -out BENCH_kernels.json

loadgen: ## Deterministic serving smoke: ci-smoke, its skip-compute twin and the sharded fleet arm on the simulator, each run twice and compared (the CI gate).
	$(GO) run ./cmd/edgeis-loadgen -profile ci-smoke -check -out -
	$(GO) run ./cmd/edgeis-loadgen -profile ci-smoke-skip -check -out -
	$(GO) run ./cmd/edgeis-loadgen -profile ci-smoke-fleet -check -out -

servingbench: ## Full serving SLO suite (all simulator profiles + tcp-smoke over sockets); refreshes BENCH_serving.json.
	$(GO) run ./cmd/edgeis-loadgen -suite -check -out BENCH_serving.json

check: vet lint build test race ## Everything CI runs, in order.
